/// \file
/// OS-primitive cost recipes.
///
/// Each function returns the layer-independent OpCost of one OS operation,
/// expressed in the TimingModel's primitives. The recipes are calibrated so
/// that pricing them at L0/L1/L2 reproduces lmbench Table III of the paper
/// (see tests/workloads/lmbench_test.cc for the tolerance checks and
/// DESIGN.md §3 for the derivations).
#pragma once

#include "hv/timing_model.h"

namespace csk::guestos {

/// fork(): copy mm, COW-protect ~140 pages worth of PTE work.
inline hv::OpCost fork_cost() {
  hv::OpCost c;
  c.cpu_ns = 30000;
  c.n_faults = 139.5;
  c.n_svc = 1;
  c.mem_intensity = 0.1;
  return c;
}

/// execve(): map the new image, relocate, fault in text/data.
inline hv::OpCost execve_cost() {
  hv::OpCost c;
  c.cpu_ns = 120000;
  c.n_faults = 100;
  c.n_exits = 6;  // image load touches emulated devices / MSRs
  c.n_svc = 1;
  c.mem_intensity = 0.3;
  return c;
}

/// _exit(): teardown.
inline hv::OpCost exit_cost() {
  hv::OpCost c;
  c.cpu_ns = 2650;
  c.n_svc = 1;
  return c;
}

/// /bin/sh -c interpreter startup and command dispatch (beyond the two
/// fork+execve pairs it triggers).
inline hv::OpCost shell_overhead_cost() {
  hv::OpCost c;
  c.cpu_ns = 450000;
  c.n_faults = 200;
  c.n_ctxsw = 2;
  c.n_svc = 20;
  c.mem_intensity = 0.2;
  return c;
}

/// sigaction() install.
inline hv::OpCost signal_install_cost() {
  hv::OpCost c;
  c.cpu_ns = 25;
  c.n_svc = 1;
  return c;
}

/// Signal delivery + handler return.
inline hv::OpCost signal_overhead_cost() {
  hv::OpCost c;
  c.cpu_ns = 450;
  c.n_svc = 1;
  return c;
}

/// Write to a protected page -> SIGSEGV round trip (lmbench "prot fault").
inline hv::OpCost protection_fault_cost() {
  hv::OpCost c;
  c.cpu_ns = 220;
  c.n_svc = 1;
  return c;
}

/// Pipe round-trip latency between two processes (2 context switches).
inline hv::OpCost pipe_latency_cost() {
  hv::OpCost c;
  c.cpu_ns = 1000;
  c.n_ctxsw = 2;
  c.n_svc = 2;
  return c;
}

/// AF_UNIX stream round trip; wakeups batch slightly better than pipes.
inline hv::OpCost af_unix_latency_cost() {
  hv::OpCost c;
  c.cpu_ns = 1780;
  c.n_ctxsw = 1.33;
  c.n_svc = 4;
  return c;
}

/// File creation of `size_bytes` (page-cache only, as lmbench measures).
inline hv::OpCost file_create_cost(std::uint64_t size_bytes) {
  hv::OpCost c;
  c.cpu_ns = 7510;
  if (size_bytes > 0) {
    c.cpu_ns += 1900 + 0.27 * static_cast<double>(size_bytes);
  }
  c.n_svc = 2;
  c.n_faults = 1;
  c.mem_intensity = 0.2;
  c.pages_dirtied = 1 + static_cast<double>(size_bytes) / 4096.0;
  return c;
}

/// File deletion of a file that had `size_bytes` of data.
inline hv::OpCost file_delete_cost(std::uint64_t size_bytes) {
  hv::OpCost c;
  c.cpu_ns = 2530;
  if (size_bytes > 0) {
    c.cpu_ns += 700 + 0.13 * static_cast<double>(size_bytes);
  }
  c.n_svc = 1;
  c.n_faults = 0.3;
  c.mem_intensity = 0.2;
  c.pages_dirtied = 1;
  return c;
}

}  // namespace csk::guestos
