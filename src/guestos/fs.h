/// \file
/// SimFs: an in-memory file system for a simulated guest.
///
/// Files hold per-page contents (real bytes for files the experiments
/// inspect, like the detector's File-A; synthetic hashes for bulk data).
/// SimFs is deliberately flat — the paper's workloads (Filebench, lmbench fs
/// latency, File-A loading) never need directories deeper than a namespace.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "mem/page.h"

namespace csk::guestos {

struct SimFile {
  std::string name;
  std::uint64_t size_bytes = 0;
  std::vector<mem::PageData> pages;

  std::size_t page_count() const { return pages.size(); }
};

class SimFs {
 public:
  SimFs() = default;

  /// Creates a file from explicit page contents.
  Status create(const std::string& name, std::vector<mem::PageData> pages,
                std::uint64_t size_bytes);

  /// Creates a file of `size_bytes` filled with unique synthetic content
  /// drawn from `rng` (every page distinct — "unique" in the paper's §VI-B
  /// sense: no identical page exists anywhere else by construction).
  Status create_unique(const std::string& name, std::uint64_t size_bytes,
                       Rng& rng);

  /// Creates a byte-backed file with pseudo-random bytes (e.g. the mp3 used
  /// as File-A in §VI-C). Pages carry real bytes so detector-side equality
  /// is literal.
  Status create_random_bytes(const std::string& name,
                             std::uint64_t size_bytes, Rng& rng);

  Status remove(const std::string& name);
  bool exists(const std::string& name) const { return files_.contains(name); }
  Result<const SimFile*> open(const std::string& name) const;

  /// Rewrites one page of the file (detector step 2 modifies File-A).
  Status write_page(const std::string& name, std::size_t page_index,
                    mem::PageData data);

  std::size_t file_count() const { return files_.size(); }
  std::vector<std::string> list() const;

 private:
  std::map<std::string, SimFile> files_;
};

}  // namespace csk::guestos
