#include "guestos/os.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace csk::guestos {

GuestOS::GuestOS(mem::AddressSpace* memory, OsIdentity identity, Rng rng,
                 std::size_t ram_pages)
    : memory_(memory), identity_(std::move(identity)), rng_(rng) {
  CSK_CHECK(memory != nullptr);
  ram_pages_ = ram_pages == 0 ? memory->size_pages() : ram_pages;
  CSK_CHECK_MSG(ram_pages_ <= memory->size_pages(),
                "RAM limit exceeds address-space size");
  CSK_CHECK_MSG(ram_pages_ > kFirstAllocatableGfn + 16,
                "guest memory too small for an OS");
  bump_high_ = ram_pages_;
}

void GuestOS::boot() {
  CSK_CHECK_MSG(!booted_, "double boot");
  booted_ = true;
  spawn("init", "/sbin/init", Pid(0));
  spawn("systemd-journal", "/usr/lib/systemd/systemd-journald");
  spawn("sshd", "/usr/sbin/sshd -D");
  spawn("bash", "-bash");
}

Pid GuestOS::spawn(const std::string& name, const std::string& cmdline,
                   Pid parent) {
  const Pid pid(next_pid_++);
  procs_.emplace(pid, Process{pid, parent, name,
                              cmdline.empty() ? name : cmdline, true});
  refresh_proc_table_page();
  return pid;
}

Status GuestOS::kill(Pid pid) {
  auto it = procs_.find(pid);
  if (it == procs_.end() || !it->second.alive) {
    return not_found("no such process: " + pid.to_string());
  }
  it->second.alive = false;
  refresh_proc_table_page();
  return Status::ok();
}

Result<Process> GuestOS::find_process(Pid pid) const {
  auto it = procs_.find(pid);
  if (it == procs_.end()) return not_found("no such process");
  return it->second;
}

Result<Process> GuestOS::find_process_by_name(const std::string& name) const {
  // Name lookup models pidof/pgrep: it sees only what the kernel exposes,
  // so hidden processes stay hidden. find_process(pid) is the raw handle.
  for (const auto& [pid, p] : procs_) {
    if (p.alive && !p.hidden && p.name == name) return p;
  }
  return not_found("no live process named " + name);
}

Status GuestOS::hide_process(Pid pid) {
  auto it = procs_.find(pid);
  if (it == procs_.end() || !it->second.alive) {
    return not_found("no such process: " + pid.to_string());
  }
  it->second.hidden = true;
  refresh_proc_table_page();
  return Status::ok();
}

std::vector<Process> GuestOS::ps() const {
  std::vector<Process> out;
  for (const auto& [pid, p] : procs_) {
    if (p.alive && !p.hidden) out.push_back(p);
  }
  return out;
}

Result<Gfn> GuestOS::alloc_gfn() {
  if (!free_gfns_.empty()) {
    const Gfn g = free_gfns_.back();
    free_gfns_.pop_back();
    return g;
  }
  if (bump_low_ >= ram_pages_) {
    return resource_exhausted("guest out of memory");
  }
  return Gfn(bump_low_++);
}

Result<std::vector<Gfn>> GuestOS::load_file(const std::string& name) {
  if (auto it = page_cache_.find(name); it != page_cache_.end()) {
    return it->second;
  }
  CSK_ASSIGN_OR_RETURN(const SimFile* file, fs_.open(name));
  std::vector<Gfn> gfns;
  gfns.reserve(file->pages.size());
  for (const mem::PageData& page : file->pages) {
    CSK_ASSIGN_OR_RETURN(Gfn g, alloc_gfn());
    memory_->write_page(g, page);
    pinned_gfns_.insert(g.value());
    gfns.push_back(g);
  }
  page_cache_.emplace(name, gfns);
  return gfns;
}

Result<std::vector<Gfn>> GuestOS::cached_gfns(const std::string& name) const {
  auto it = page_cache_.find(name);
  if (it == page_cache_.end()) return not_found("file not in page cache");
  return it->second;
}

Status GuestOS::evict_file(const std::string& name) {
  auto it = page_cache_.find(name);
  if (it == page_cache_.end()) return not_found("file not in page cache");
  for (Gfn g : it->second) {
    pinned_gfns_.erase(g.value());
    free_gfns_.push_back(g);
  }
  page_cache_.erase(it);
  return Status::ok();
}

Result<std::vector<Gfn>> GuestOS::replace_file(
    const std::string& name, std::vector<mem::PageData> pages,
    std::uint64_t size_bytes) {
  auto it = page_cache_.find(name);
  if (it == page_cache_.end()) return not_found("file not in page cache");
  // Allocate and populate the new cache pages while the old ones are still
  // resident: they are not on the free list yet, so the allocator cannot
  // hand any of them back — the fresh gfn set is disjoint from the old one.
  std::vector<Gfn> fresh;
  fresh.reserve(pages.size());
  for (const mem::PageData& page : pages) {
    CSK_ASSIGN_OR_RETURN(Gfn g, alloc_gfn());
    memory_->write_page(g, page);
    pinned_gfns_.insert(g.value());
    fresh.push_back(g);
  }
  // Swap the on-"disk" file, then retire the old cache pages.
  CSK_RETURN_IF_ERROR(fs_.remove(name));
  CSK_RETURN_IF_ERROR(fs_.create(name, std::move(pages), size_bytes));
  for (Gfn g : it->second) {
    pinned_gfns_.erase(g.value());
    free_gfns_.push_back(g);
  }
  it->second = fresh;
  return fresh;
}

Status GuestOS::modify_cached_page(const std::string& name,
                                   std::size_t page_index,
                                   mem::PageData data) {
  auto it = page_cache_.find(name);
  if (it == page_cache_.end()) return not_found("file not in page cache");
  if (page_index >= it->second.size()) {
    return invalid_argument("page index beyond end of file");
  }
  CSK_RETURN_IF_ERROR(fs_.write_page(name, page_index, data));
  memory_->write_page(it->second[page_index], std::move(data));
  return Status::ok();
}

Status GuestOS::perturb_cached_file(const std::string& name) {
  auto cached = cached_gfns(name);
  if (!cached.is_ok()) return cached.status();
  CSK_ASSIGN_OR_RETURN(const SimFile* file, fs_.open(name));
  for (std::size_t i = 0; i < file->pages.size(); ++i) {
    mem::PageData page = file->pages[i];
    if (page.bytes && !page.bytes->empty()) {
      // Flip one byte — the paper's "slightly change each page". Payloads
      // are shared and immutable, so mutate a copy, never the original.
      mem::PageBytes mutated = *page.bytes;
      mutated[0] ^= 0xFF;
      page = mem::PageData::from_bytes(std::move(mutated));
    } else {
      page = mem::PageData::synthetic(hash_combine(page.hash, 0xF11Full));
    }
    CSK_RETURN_IF_ERROR(modify_cached_page(name, i, std::move(page)));
  }
  return Status::ok();
}

Result<std::vector<Gfn>> GuestOS::allocate_region(std::size_t num_pages) {
  std::vector<Gfn> region;
  region.reserve(num_pages);
  while (region.size() < num_pages && !free_region_gfns_.empty()) {
    region.push_back(free_region_gfns_.back());
    free_region_gfns_.pop_back();
  }
  const std::size_t still_needed = num_pages - region.size();
  if (bump_high_ + still_needed > memory_->size_pages()) {
    // Put reclaimed pages back; the caller gets nothing on failure.
    for (Gfn g : region) free_region_gfns_.push_back(g);
    return resource_exhausted("guest arena exhausted for region of " +
                              std::to_string(num_pages) + " pages");
  }
  for (std::size_t i = 0; i < still_needed; ++i) {
    region.push_back(Gfn(bump_high_++));
  }
  return region;
}

void GuestOS::free_region(const std::vector<Gfn>& region) {
  for (Gfn g : region) free_region_gfns_.push_back(g);
}

SimDuration GuestOS::dirty_random_pages(std::size_t n) {
  SimDuration total;
  const std::uint64_t span = bump_low_ - kFirstAllocatableGfn;
  for (std::size_t i = 0; i < n; ++i) {
    // Prefer already allocated pages; fall back to fresh ones.
    Gfn g = Gfn::invalid();
    if (span > 0 && rng_.chance(0.8)) {
      g = Gfn(kFirstAllocatableGfn + rng_.uniform(span));
      int retries = 8;
      while (pinned_gfns_.contains(g.value()) && retries-- > 0) {
        g = Gfn(kFirstAllocatableGfn + rng_.uniform(span));
      }
      if (pinned_gfns_.contains(g.value())) continue;
    } else {
      auto fresh = alloc_gfn();
      if (!fresh.is_ok()) {
        g = Gfn(kFirstAllocatableGfn + (span ? rng_.uniform(span) : 0));
      } else {
        g = fresh.value();
      }
    }
    total += memory_
                 ->write_page(g, mem::PageData::synthetic(
                                     ContentHash{rng_.next_u64() | 1}))
                 .cost;
  }
  return total;
}

SimDuration GuestOS::dirty_pages_cyclic(std::size_t n) {
  SimDuration total;
  if (bump_low_ <= kFirstAllocatableGfn) return total;
  const std::size_t span = bump_low_ - kFirstAllocatableGfn;
  if (pinned_gfns_.size() >= span) return total;  // nothing recyclable
  for (std::size_t i = 0; i < n; ++i) {
    // Skip pinned pages (live page cache): workload churn is anonymous.
    for (;;) {
      if (dirty_cursor_ >= bump_low_) dirty_cursor_ = kFirstAllocatableGfn;
      if (!pinned_gfns_.contains(dirty_cursor_)) break;
      ++dirty_cursor_;
    }
    total += memory_
                 ->write_page(Gfn(dirty_cursor_++),
                              mem::PageData::synthetic(
                                  ContentHash{rng_.next_u64() | 1}))
                 .cost;
  }
  return total;
}

Status GuestOS::touch_boot_working_set(std::uint64_t mib) {
  const std::size_t n = static_cast<std::size_t>(mib) * 256;
  for (std::size_t i = 0; i < n; ++i) {
    CSK_ASSIGN_OR_RETURN(Gfn g, alloc_gfn());
    memory_->write_page(
        g, mem::PageData::synthetic(ContentHash{rng_.next_u64() | 1}));
  }
  return Status::ok();
}

void GuestOS::refresh_proc_table_page() {
  const std::string blob = serialize_proc_table(identity_, ps());
  mem::PageBytes bytes(blob.begin(), blob.end());
  CSK_CHECK_MSG(bytes.size() <= mem::kPageSize,
                "proc table page overflow; trim the process list");
  memory_->write_page(Gfn(kProcTableGfn), mem::PageData::from_bytes(bytes));
}

std::string serialize_proc_table(const OsIdentity& identity,
                                 const std::vector<Process>& procs) {
  std::ostringstream out;
  out << "CSKPROC1\n"
      << identity.os_name << "\n"
      << identity.kernel_version << "\n"
      << identity.hostname << "\n";
  for (const Process& p : procs) {
    out << p.pid.value() << "\t" << p.parent.value() << "\t" << p.name << "\t"
        << p.cmdline << "\n";
  }
  return out.str();
}

Result<ParsedProcTable> parse_proc_table(const mem::PageBytes& bytes) {
  std::istringstream in(std::string(bytes.begin(), bytes.end()));
  std::string magic;
  if (!std::getline(in, magic) || magic != "CSKPROC1") {
    return not_found("not a proc-table page (semantic gap)");
  }
  ParsedProcTable out;
  if (!std::getline(in, out.identity.os_name) ||
      !std::getline(in, out.identity.kernel_version) ||
      !std::getline(in, out.identity.hostname)) {
    return internal_error("truncated proc-table header");
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string pid_s, ppid_s, name, cmdline;
    if (!std::getline(ls, pid_s, '\t') || !std::getline(ls, ppid_s, '\t') ||
        !std::getline(ls, name, '\t')) {
      return internal_error("malformed proc-table row");
    }
    std::getline(ls, cmdline, '\t');
    Process p;
    p.pid = Pid(std::stoi(pid_s));
    p.parent = Pid(std::stoi(ppid_s));
    p.name = name;
    p.cmdline = cmdline;
    out.procs.push_back(std::move(p));
  }
  return out;
}

}  // namespace csk::guestos
