/// \file
/// lmbench 3.0-a9 microbenchmark suite (paper Tables II, III, IV).
///
/// Three groups, exactly as the paper reports them:
///   * arithmetic operation latencies in nanoseconds (Table II);
///   * process/IPC primitives in microseconds (Table III);
///   * file create/delete throughput per second at 0K/1K/4K/10K (Table IV).
#pragma once

#include <string>
#include <vector>

#include "hv/timing_model.h"

namespace csk::workloads {

struct LmbenchArithResult {
  std::string op;     // "integer div", "double mul", ...
  double ns = 0;      // per-operation latency
};

struct LmbenchProcResult {
  std::string op;     // "pipe latency", "fork+ exit", ...
  double us = 0;      // per-operation latency
};

struct LmbenchFsResult {
  std::uint64_t file_bytes = 0;        // 0, 1024, 4096, 10240
  double creations_per_sec = 0;
  double deletions_per_sec = 0;
};

class LmbenchSuite {
 public:
  /// Table II row order.
  static const std::vector<std::pair<std::string, double>>& arith_ops_l0_ns();

  /// Table III row order.
  static std::vector<std::string> proc_op_names();

  /// Table IV column sizes.
  static std::vector<std::uint64_t> fs_sizes();

  std::vector<LmbenchArithResult> run_arith(const hv::ExecEnv& env) const;
  std::vector<LmbenchProcResult> run_proc(const hv::ExecEnv& env) const;
  std::vector<LmbenchFsResult> run_fs(const hv::ExecEnv& env) const;

  /// Single proc-op latency by Table III name (µs).
  double proc_op_us(const std::string& op, const hv::ExecEnv& env) const;
};

}  // namespace csk::workloads
