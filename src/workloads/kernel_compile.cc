#include "workloads/kernel_compile.h"

namespace csk::workloads {

hv::OpCost KernelCompileWorkload::cost_for(const hv::ExecEnv& env) const {
  using guestos::execve_cost;
  using guestos::exit_cost;
  using guestos::fork_cost;

  hv::OpCost unit;
  unit.cpu_ns = params_.unit_cpu_ns *
                (env.ccache_enabled ? params_.ccache_factor : 1.0);
  unit.mem_intensity = 1.0;  // pointer-chasing compiler data structures
  unit.n_faults = params_.unit_faults;
  unit.n_ctxsw = params_.unit_ctxsw;
  unit.n_svc = params_.unit_svc;
  unit.n_io_ops = params_.unit_io_ops;
  unit.pages_dirtied = params_.unit_pages_dirtied;
  unit += fork_cost();
  unit += execve_cost();
  unit += exit_cost();

  hv::OpCost total = unit * static_cast<double>(params_.compile_units);

  hv::OpCost decompress;
  decompress.cpu_ns = params_.decompress_cpu_ns;
  decompress.mem_intensity = 0.5;
  decompress.n_io_ops = params_.decompress_io_ops;
  decompress.pages_dirtied = 25000;
  total += decompress;
  return total;
}

}  // namespace csk::workloads
