/// \file
/// Linux kernel compile workload (paper Fig 2 and the Fig 4 CPU/memory
/// series): decompress the tree, then compile ~2700 translation units.
///
/// Each unit is a gcc invocation — a fork+execve, a memory-intensive compute
/// burst, thousands of minor faults, some page-cache IO. The ccache toggle
/// reproduces footnote 1: the authors had ccache working on L0 only, which
/// is the entire 280 % L0->L1 gap.
#pragma once

#include "guestos/costs.h"
#include "workloads/workload.h"

namespace csk::workloads {

class KernelCompileWorkload final : public Workload {
 public:
  struct Params {
    int compile_units = 2700;
    /// Compute per unit, uncached, at L0 speed (kernel 4.0.5, i7-4790).
    double unit_cpu_ns = 200e6;
    /// Compute multiplier when ccache serves the unit.
    double ccache_factor = 0.25;
    double unit_faults = 3000;
    double unit_ctxsw = 2;
    double unit_svc = 30;
    double unit_io_ops = 3;
    double unit_pages_dirtied = 110;
    /// Tarball decompress before the build.
    double decompress_cpu_ns = 10e9;
    double decompress_io_ops = 200;
  };

  KernelCompileWorkload() = default;
  explicit KernelCompileWorkload(Params params) : params_(params) {}

  std::string name() const override { return "kernel-compile"; }

  hv::OpCost cost_for(const hv::ExecEnv& env) const override;

  /// Sustained page-dirty rate while compiling: object files, temporaries
  /// and gcc heaps churn ~19 MiB/s of fresh pages.
  double dirty_rate(SimDuration) const override { return 4890.0; }

  const Params& params() const { return params_; }

 private:
  Params params_;
};

}  // namespace csk::workloads
