#include "workloads/netperf.h"

#include <algorithm>

#include "common/logging.h"

namespace csk::workloads {

double NetperfWorkload::throughput_bps(const hv::ExecEnv& env,
                                       Rng& rng) const {
  const int i = hv::layer_index(env.layer);
  const double mean = params_.base_throughput_bps * params_.layer_factor[i];
  const double sample = rng.normal(mean, mean * params_.rel_stddev[i]);
  return std::max(sample, 0.05 * mean);
}

NetperfPacketStream::NetperfPacketStream(net::SimNetwork* network,
                                         net::NetAddr src, net::NetAddr dst,
                                         Options options)
    : network_(network),
      src_(std::move(src)),
      dst_(std::move(dst)),
      options_(options),
      payload_(std::string(options.payload_bytes, 'n')),
      conn_(network->new_conn()) {
  CSK_CHECK(network != nullptr);
}

SimTime NetperfPacketStream::blast(std::uint64_t count) {
  SimTime last = SimTime::origin();
  for (std::uint64_t i = 0; i < count; ++i) {
    net::Packet pkt;
    pkt.conn = conn_;
    pkt.seq = next_seq_++;
    pkt.kind = net::ProtoKind::kNetperfBulk;
    pkt.src = src_;
    pkt.reply_to = src_;
    pkt.wire_bytes = options_.segment_bytes;
    pkt.payload = payload_;  // refcount bump, no byte copy
    last = network_->send(dst_, std::move(pkt));
    ++segments_sent_;
  }
  return last;
}

hv::OpCost NetperfWorkload::cost_for(const hv::ExecEnv& env) const {
  // Send-side work for duration_sec of bulk transfer: one 64 KiB chunk per
  // iteration, kicks batched 1:16.
  const int i = hv::layer_index(env.layer);
  const double bytes =
      params_.base_throughput_bps * params_.layer_factor[i] / 8.0 *
      params_.duration_sec;
  const double chunks = bytes / 65536.0;
  hv::OpCost c;
  c.cpu_ns = chunks * 1200.0;
  c.mem_intensity = 0.3;
  c.n_svc = chunks;
  c.n_exits = chunks / 16.0;
  c.pages_dirtied = chunks * 0.5;
  return c;
}

}  // namespace csk::workloads
