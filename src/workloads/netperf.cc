#include "workloads/netperf.h"

#include <algorithm>

namespace csk::workloads {

double NetperfWorkload::throughput_bps(const hv::ExecEnv& env,
                                       Rng& rng) const {
  const int i = hv::layer_index(env.layer);
  const double mean = params_.base_throughput_bps * params_.layer_factor[i];
  const double sample = rng.normal(mean, mean * params_.rel_stddev[i]);
  return std::max(sample, 0.05 * mean);
}

hv::OpCost NetperfWorkload::cost_for(const hv::ExecEnv& env) const {
  // Send-side work for duration_sec of bulk transfer: one 64 KiB chunk per
  // iteration, kicks batched 1:16.
  const int i = hv::layer_index(env.layer);
  const double bytes =
      params_.base_throughput_bps * params_.layer_factor[i] / 8.0 *
      params_.duration_sec;
  const double chunks = bytes / 65536.0;
  hv::OpCost c;
  c.cpu_ns = chunks * 1200.0;
  c.mem_intensity = 0.3;
  c.n_svc = chunks;
  c.n_exits = chunks / 16.0;
  c.pages_dirtied = chunks * 0.5;
  return c;
}

}  // namespace csk::workloads
