#include "workloads/lmbench.h"

#include "guestos/costs.h"

namespace csk::workloads {

namespace {

/// Table II L0 column: measured per-op latencies on the i7-4790 testbed.
const std::vector<std::pair<std::string, double>> kArithL0 = {
    {"integer bit", 0.26}, {"integer add", 0.13}, {"integer div", 5.94},
    {"integer mod", 6.37}, {"float add", 0.75},   {"float mul", 1.25},
    {"float div", 3.31},   {"double add", 0.75},  {"double mul", 1.25},
    {"double div", 5.06},
};

hv::OpCost proc_cost(const std::string& op) {
  using namespace guestos;
  if (op == "signal handler installation") return signal_install_cost();
  if (op == "signal handler overhead") return signal_overhead_cost();
  if (op == "protection fault") return protection_fault_cost();
  if (op == "pipe latency") return pipe_latency_cost();
  if (op == "AF_UNIX sock stream latency") return af_unix_latency_cost();
  if (op == "fork+ exit") {
    hv::OpCost c = fork_cost();
    c += exit_cost();
    return c;
  }
  if (op == "fork+ execve") {
    hv::OpCost c = fork_cost();
    c += execve_cost();
    c += exit_cost();
    return c;
  }
  if (op == "fork+ /bin/sh -c") {
    // sh -c CMD: fork+exec of sh, interpreter overhead, then fork+exec of
    // the command, and both exits.
    hv::OpCost c = fork_cost();
    c += execve_cost();
    c += shell_overhead_cost();
    c += fork_cost();
    c += execve_cost();
    c += exit_cost();
    c += exit_cost();
    return c;
  }
  CSK_CHECK_MSG(false, "unknown lmbench proc op: " + op);
  return {};
}

}  // namespace

const std::vector<std::pair<std::string, double>>&
LmbenchSuite::arith_ops_l0_ns() {
  return kArithL0;
}

std::vector<std::string> LmbenchSuite::proc_op_names() {
  return {"signal handler installation",
          "signal handler overhead",
          "protection fault",
          "pipe latency",
          "AF_UNIX sock stream latency",
          "fork+ exit",
          "fork+ execve",
          "fork+ /bin/sh -c"};
}

std::vector<std::uint64_t> LmbenchSuite::fs_sizes() {
  return {0, 1024, 4096, 10240};
}

std::vector<LmbenchArithResult> LmbenchSuite::run_arith(
    const hv::ExecEnv& env) const {
  std::vector<LmbenchArithResult> out;
  out.reserve(kArithL0.size());
  for (const auto& [op, l0_ns] : kArithL0) {
    // Pure register arithmetic: no syscalls, no faults, no memory pressure.
    // Price a large batch to dodge integer truncation on sub-ns latencies.
    constexpr double kBatch = 1e6;
    hv::OpCost c;
    c.cpu_ns = l0_ns * kBatch;
    const SimDuration batch = env.price(c);
    out.push_back({op, static_cast<double>(batch.ns()) / kBatch});
  }
  return out;
}

std::vector<LmbenchProcResult> LmbenchSuite::run_proc(
    const hv::ExecEnv& env) const {
  std::vector<LmbenchProcResult> out;
  for (const std::string& op : proc_op_names()) {
    out.push_back({op, proc_op_us(op, env)});
  }
  return out;
}

double LmbenchSuite::proc_op_us(const std::string& op,
                                const hv::ExecEnv& env) const {
  return env.price(proc_cost(op)).micros_f();
}

std::vector<LmbenchFsResult> LmbenchSuite::run_fs(
    const hv::ExecEnv& env) const {
  std::vector<LmbenchFsResult> out;
  for (std::uint64_t size : fs_sizes()) {
    LmbenchFsResult r;
    r.file_bytes = size;
    const SimDuration create = env.price(guestos::file_create_cost(size));
    const SimDuration del = env.price(guestos::file_delete_cost(size));
    r.creations_per_sec = create > SimDuration::zero()
                              ? 1e9 / static_cast<double>(create.ns())
                              : 0.0;
    r.deletions_per_sec =
        del > SimDuration::zero() ? 1e9 / static_cast<double>(del.ns()) : 0.0;
    out.push_back(r);
  }
  return out;
}

}  // namespace csk::workloads
