/// \file
/// Netperf TCP_STREAM workload (paper Fig 3).
///
/// Bulk unidirectional TCP transfer. With virtio paravirtual networking and
/// interrupt/kick suppression at bulk rates, per-packet exits amortize away
/// and all three layers sustain essentially link-limited throughput — the
/// paper's own conclusion ("nearly the same across all the execution
/// environments", with relative stddevs 1.11 / 10.32 / 3.96 % that dwarf the
/// mean differences). The model therefore produces a layer-degraded mean
/// plus layer-calibrated run-to-run noise; the paper's +8.95 % L1->L2 delta
/// is a noise artifact, not a mechanism, and EXPERIMENTS.md discusses this.
#pragma once

#include <array>
#include <cstdint>
#include <utility>

#include "net/network.h"
#include "net/packet.h"
#include "workloads/workload.h"

namespace csk::workloads {

class NetperfWorkload final : public Workload {
 public:
  struct Params {
    /// Link-limited goodput on the testbed's loopback-ish path.
    double base_throughput_bps = 9.41e9;
    /// Mild per-layer degradation (virtio path length).
    std::array<double, 3> layer_factor = {1.0, 0.985, 0.975};
    /// Run-to-run relative stddev per layer (paper-reported values).
    std::array<double, 3> rel_stddev = {0.0111, 0.1032, 0.0396};
    double duration_sec = 10.0;
  };

  NetperfWorkload() = default;
  explicit NetperfWorkload(Params params) : params_(params) {}

  std::string name() const override { return "netperf-tcp-stream"; }

  /// One measured TCP_STREAM sample in bits/second.
  double throughput_bps(const hv::ExecEnv& env, Rng& rng) const;

  /// Op-cost face: the send-side CPU work of one run (used when netperf is
  /// the guest activity during other experiments).
  hv::OpCost cost_for(const hv::ExecEnv& env) const override;

  double dirty_rate(SimDuration) const override { return 300.0; }

  const Params& params() const { return params_; }

 private:
  Params params_;
};

/// The fabric-level face of the workload: drives actual kNetperfBulk
/// packets through a SimNetwork, the way netperf hammers a real NIC. Every
/// segment of a stream shares ONE immutable payload buffer (PayloadRef), so
/// tap fan-out, forwarder relays and burst queues move refcounts instead of
/// bytes — this is the traffic generator behind bench_net_scaling and the
/// burst-equivalence tests.
class NetperfPacketStream {
 public:
  struct Options {
    std::uint64_t segment_bytes = 65536;  ///< wire bytes billed per segment
    std::size_t payload_bytes = 512;      ///< in-memory stand-in buffer size
  };

  NetperfPacketStream(net::SimNetwork* network, net::NetAddr src,
                      net::NetAddr dst, Options options);
  NetperfPacketStream(net::SimNetwork* network, net::NetAddr src,
                      net::NetAddr dst)
      : NetperfPacketStream(network, std::move(src), std::move(dst),
                            Options()) {}

  /// Enqueues `count` back-to-back segments at the current sim time (they
  /// serialize behind each other on the link). Returns the scheduled
  /// arrival time of the last segment.
  SimTime blast(std::uint64_t count);

  std::uint64_t segments_sent() const { return segments_sent_; }

  /// The one buffer all this stream's packets alias (zero-copy probe).
  const net::PayloadRef& shared_payload() const { return payload_; }

 private:
  net::SimNetwork* network_;
  net::NetAddr src_;
  net::NetAddr dst_;
  Options options_;
  net::PayloadRef payload_;
  ConnId conn_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t segments_sent_ = 0;
};

}  // namespace csk::workloads
