/// \file
/// Workload interface.
///
/// A workload has two faces, matching its two roles in the paper:
///   * an *op-cost* face — the aggregate OpCost of one run, priced per layer
///     to produce the performance figures (Fig 2/3, Tables II-IV);
///   * a *dirty-rate* face — pages/second written while it runs, which is
///     what live migration fights against (Fig 4).
#pragma once

#include <string>

#include "common/rng.h"
#include "common/time.h"
#include "hv/timing_model.h"

namespace csk::workloads {

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;

  /// Aggregate cost of one complete run in `env` (environment toggles like
  /// ccache can change the cost itself, not just its price).
  virtual hv::OpCost cost_for(const hv::ExecEnv& env) const = 0;

  /// Pages per second dirtied `elapsed` into a run.
  virtual double dirty_rate(SimDuration elapsed) const = 0;

  /// Prices one run in `env`.
  SimDuration run(const hv::ExecEnv& env) const {
    return env.price(cost_for(env));
  }

  /// Prices one run with multiplicative run-to-run noise.
  SimDuration run_noisy(const hv::ExecEnv& env, Rng& rng,
                        double rel_stddev) const {
    CSK_CHECK(env.timing != nullptr);
    return env.timing->price_noisy(cost_for(env), env.layer, rng, rel_stddev);
  }
};

/// A guest that is connected but doing nothing (paper Fig 4 "idle"):
/// background daemons still touch a trickle of pages.
class IdleWorkload final : public Workload {
 public:
  std::string name() const override { return "idle"; }
  hv::OpCost cost_for(const hv::ExecEnv&) const override { return {}; }
  double dirty_rate(SimDuration) const override { return 50.0; }
};

}  // namespace csk::workloads
