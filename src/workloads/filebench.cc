#include "workloads/filebench.h"

namespace csk::workloads {

hv::OpCost FilebenchWorkload::iteration_cost() const {
  hv::OpCost c = guestos::file_create_cost(params_.mean_file_bytes);
  c += guestos::file_delete_cost(params_.mean_file_bytes);
  hv::OpCost extra;
  extra.cpu_ns = params_.extra_cpu_ns;
  extra.mem_intensity = 0.3;
  extra.n_io_ops = params_.extra_io_ops;
  extra.n_svc = params_.extra_svc;
  c += extra;
  return c;
}

hv::OpCost FilebenchWorkload::cost_for(const hv::ExecEnv&) const {
  return iteration_cost() * static_cast<double>(params_.iterations);
}

double FilebenchWorkload::ops_per_second(const hv::ExecEnv& env) const {
  const SimDuration per_iter = env.price(iteration_cost());
  if (per_iter <= SimDuration::zero()) return 0.0;
  return 1e9 / static_cast<double>(per_iter.ns());
}

}  // namespace csk::workloads
