/// \file
/// Filebench workload (paper Fig 4's IO-intensive series).
///
/// Models the fileserver personality: a steady mix of create / append /
/// read / delete operations against the guest page cache, composed from the
/// same file-op cost recipes that calibrate Table IV.
#pragma once

#include "guestos/costs.h"
#include "workloads/workload.h"

namespace csk::workloads {

class FilebenchWorkload final : public Workload {
 public:
  struct Params {
    int iterations = 50000;
    std::uint64_t mean_file_bytes = 16384;
    /// Per-iteration read/stat overhead beyond create+delete.
    double extra_cpu_ns = 22000;
    double extra_io_ops = 1.5;
    double extra_svc = 6;
  };

  FilebenchWorkload() = default;
  explicit FilebenchWorkload(Params params) : params_(params) {}

  std::string name() const override { return "filebench-fileserver"; }

  hv::OpCost cost_for(const hv::ExecEnv&) const override;

  /// Throughput face: filebench ops/second in `env`.
  double ops_per_second(const hv::ExecEnv& env) const;

  /// Page-cache churn of ~4 MiB/s.
  double dirty_rate(SimDuration) const override { return 1024.0; }

  const Params& params() const { return params_; }

 private:
  hv::OpCost iteration_cost() const;
  Params params_;
};

}  // namespace csk::workloads
