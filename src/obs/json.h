/// \file
/// Minimal JSON value, writer and parser.
///
/// The observability layer emits machine-readable artifacts — metric
/// snapshots, chrome://tracing event streams, BENCH_*.json reports — and the
/// bench smoke test reads them back. Both directions live here so the repo
/// needs no external JSON dependency. The model is deliberately small:
/// null / bool / number (double) / string / array / object, with objects
/// preserving insertion order so emitted files diff cleanly across runs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/status.h"

namespace csk::obs {

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  /// Key/value pairs in insertion order (stable output beats O(log n) lookup
  /// at the sizes these documents reach).
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : v_(nullptr) {}  // null
  JsonValue(bool b) : v_(b) {}  // NOLINT implicit
  JsonValue(double d) : v_(d) {}                                     // NOLINT
  JsonValue(int i) : v_(static_cast<double>(i)) {}                   // NOLINT
  JsonValue(std::int64_t i) : v_(static_cast<double>(i)) {}          // NOLINT
  JsonValue(std::uint64_t i) : v_(static_cast<double>(i)) {}         // NOLINT
  JsonValue(std::string s) : v_(std::move(s)) {}                     // NOLINT
  JsonValue(const char* s) : v_(std::string(s)) {}                   // NOLINT

  static JsonValue array() { return JsonValue(Array{}); }
  static JsonValue object() { return JsonValue(Object{}); }

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  bool as_bool() const { return std::get<bool>(v_); }
  double as_number() const { return std::get<double>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const Array& as_array() const { return std::get<Array>(v_); }
  const Object& as_object() const { return std::get<Object>(v_); }

  /// Appends to an array (the value must already be one).
  JsonValue& push(JsonValue v);

  /// Sets `key` in an object (replacing an existing entry); chains.
  JsonValue& set(std::string key, JsonValue v);

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// Serializes. `indent` = 0 emits a single line; > 0 pretty-prints.
  std::string dump(int indent = 0) const;

  /// Strict parse of one JSON document (trailing garbage is an error).
  static Result<JsonValue> parse(std::string_view text);

  /// Escapes a string for embedding in JSON output (no surrounding quotes).
  static std::string escape(std::string_view s);

 private:
  explicit JsonValue(Array a) : v_(std::move(a)) {}
  explicit JsonValue(Object o) : v_(std::move(o)) {}

  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

}  // namespace csk::obs
