#include "obs/trace.h"

#include <cstdio>

namespace csk::obs {

void TraceSink::instant(std::string_view name, SimTime ts,
                        std::string_view cat) {
  if (!enabled_) return;
  events_.push_back(
      Event{'i', std::string(name), std::string(cat), ts.ns(), 0, 0.0});
}

void TraceSink::complete(std::string_view name, SimTime start, SimDuration dur,
                         std::string_view cat) {
  if (!enabled_) return;
  events_.push_back(Event{'X', std::string(name), std::string(cat), start.ns(),
                          dur.ns(), 0.0});
}

void TraceSink::counter(std::string_view name, SimTime ts, double value,
                        std::string_view cat) {
  if (!enabled_) return;
  events_.push_back(
      Event{'C', std::string(name), std::string(cat), ts.ns(), 0, value});
}

JsonValue TraceSink::to_json() const {
  // Chrome's trace-event format: timestamps/durations in microseconds.
  JsonValue arr = JsonValue::array();
  for (const Event& e : events_) {
    JsonValue ev = JsonValue::object()
                       .set("name", e.name)
                       .set("cat", e.cat)
                       .set("ph", std::string(1, e.phase))
                       .set("ts", static_cast<double>(e.ts_ns) / 1e3)
                       .set("pid", 0)
                       .set("tid", 0);
    if (e.phase == 'X') {
      ev.set("dur", static_cast<double>(e.dur_ns) / 1e3);
    } else if (e.phase == 'C') {
      ev.set("args", JsonValue::object().set("value", e.value));
    }
    arr.push(std::move(ev));
  }
  return JsonValue::object().set("traceEvents", std::move(arr));
}

Status TraceSink::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return unavailable("cannot open trace file " + path);
  const std::string body = to_chrome_json();
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (written != body.size()) return unavailable("short write to " + path);
  return Status::ok();
}

namespace {
thread_local TraceSink* tls_sink = nullptr;
}  // namespace

TraceSink& tracer() {
  if (tls_sink != nullptr) return *tls_sink;
  static TraceSink* sink = new TraceSink();
  return *sink;
}

ScopedTraceSink::ScopedTraceSink(TraceSink& target) : prev_(tls_sink) {
  tls_sink = &target;
}

ScopedTraceSink::~ScopedTraceSink() { tls_sink = prev_; }

}  // namespace csk::obs
