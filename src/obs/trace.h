/// \file
/// Structured trace sink: timestamped spans/events on the *simulated* clock,
/// exportable as chrome://tracing JSON (load the file in chrome://tracing or
/// https://ui.perfetto.dev to see the dispatch loop, migration rounds and
/// daemon activity on one timeline).
///
/// The sink is disabled by default and every recording call early-returns
/// when disabled, so an untraced run does no work beyond one branch — and,
/// because recording never advances SimTime, enabling it cannot change any
/// simulated result either. Components reach the sink through the global
/// tracer() accessor, mirroring the metrics registry.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "obs/json.h"

namespace csk::obs {

class TraceSink {
 public:
  TraceSink() = default;
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  bool enabled() const { return enabled_; }
  void enable(bool on = true) { enabled_ = on; }

  /// A point event (chrome ph="i").
  void instant(std::string_view name, SimTime ts, std::string_view cat = "sim");

  /// A span with an explicit duration (chrome ph="X").
  void complete(std::string_view name, SimTime start, SimDuration dur,
                std::string_view cat = "sim");

  /// A sampled counter track (chrome ph="C").
  void counter(std::string_view name, SimTime ts, double value,
               std::string_view cat = "sim");

  std::size_t events() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// The recorded stream as a chrome://tracing "traceEvents" array.
  JsonValue to_json() const;
  std::string to_chrome_json() const { return to_json().dump(1); }

  /// Writes to_chrome_json() to `path`.
  Status write_file(const std::string& path) const;

 private:
  struct Event {
    char phase;  // 'i' instant, 'X' complete, 'C' counter
    std::string name;
    std::string cat;
    std::int64_t ts_ns = 0;
    std::int64_t dur_ns = 0;  // complete events only
    double value = 0.0;       // counter events only
  };

  bool enabled_ = false;
  std::vector<Event> events_;
};

/// The sink the Simulator and components record into: the calling thread's
/// scoped sink when a ScopedTraceSink is active, the process-global default
/// otherwise. Neither is internally synchronized — multi-threaded callers
/// (the fleet runner) give each worker thread its own sink so the global
/// one is never shared.
TraceSink& tracer();

/// RAII thread-local redirect of tracer(), mirroring ScopedMetricsRegistry.
class ScopedTraceSink {
 public:
  explicit ScopedTraceSink(TraceSink& target);
  ~ScopedTraceSink();
  ScopedTraceSink(const ScopedTraceSink&) = delete;
  ScopedTraceSink& operator=(const ScopedTraceSink&) = delete;

 private:
  TraceSink* prev_;
};

}  // namespace csk::obs
