#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace csk::obs {

JsonValue& JsonValue::push(JsonValue v) {
  std::get<Array>(v_).push_back(std::move(v));
  return *this;
}

JsonValue& JsonValue::set(std::string key, JsonValue v) {
  Object& obj = std::get<Object>(v_);
  for (auto& [k, existing] : obj) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  obj.emplace_back(std::move(key), std::move(v));
  return *this;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : std::get<Object>(v_)) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

void append_number(std::string& out, double d) {
  // JSON has no NaN/Inf; emit null so the document stays parseable.
  if (!std::isfinite(d)) {
    out += "null";
    return;
  }
  // Integers (counter values, byte counts) print without a fraction.
  if (d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out += buf;
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    append_number(out, as_number());
  } else if (is_string()) {
    out += '"';
    out += escape(as_string());
    out += '"';
  } else if (is_array()) {
    const Array& a = as_array();
    if (a.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (i > 0) out += ',';
      append_newline_indent(out, indent, depth + 1);
      a[i].dump_to(out, indent, depth + 1);
    }
    append_newline_indent(out, indent, depth);
    out += ']';
  } else {
    const Object& o = as_object();
    if (o.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    for (std::size_t i = 0; i < o.size(); ++i) {
      if (i > 0) out += ',';
      append_newline_indent(out, indent, depth + 1);
      out += '"';
      out += escape(o[i].first);
      out += indent > 0 ? "\": " : "\":";
      o[i].second.dump_to(out, indent, depth + 1);
    }
    append_newline_indent(out, indent, depth);
    out += '}';
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ------------------------------------------------------------------ parser

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> parse_document() {
    CSK_ASSIGN_OR_RETURN(JsonValue v, parse_value());
    skip_ws();
    if (pos_ != text_.size()) return err("trailing characters after document");
    return v;
  }

 private:
  Status err(const std::string& what) const {
    return invalid_argument("JSON parse error at offset " +
                            std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return err("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      CSK_ASSIGN_OR_RETURN(std::string s, parse_string());
      return JsonValue(std::move(s));
    }
    if (consume_word("null")) return JsonValue();
    if (consume_word("true")) return JsonValue(true);
    if (consume_word("false")) return JsonValue(false);
    return parse_number();
  }

  Result<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return err("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return err("malformed number");
    return JsonValue(d);
  }

  Result<std::string> parse_string() {
    if (!consume('"')) return err("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return err("truncated \\u escape");
            const std::string hex(text_.substr(pos_, 4));
            pos_ += 4;
            char* end = nullptr;
            const long code = std::strtol(hex.c_str(), &end, 16);
            if (end != hex.c_str() + 4) return err("bad \\u escape");
            // Metric/trace names are ASCII; encode BMP code points as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return err("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return err("unterminated string");
  }

  Result<JsonValue> parse_array() {
    if (!consume('[')) return err("expected '['");
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (consume(']')) return arr;
    while (true) {
      CSK_ASSIGN_OR_RETURN(JsonValue v, parse_value());
      arr.push(std::move(v));
      skip_ws();
      if (consume(']')) return arr;
      if (!consume(',')) return err("expected ',' or ']'");
    }
  }

  Result<JsonValue> parse_object() {
    if (!consume('{')) return err("expected '{'");
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (consume('}')) return obj;
    while (true) {
      skip_ws();
      CSK_ASSIGN_OR_RETURN(std::string key, parse_string());
      skip_ws();
      if (!consume(':')) return err("expected ':'");
      CSK_ASSIGN_OR_RETURN(JsonValue v, parse_value());
      obj.set(std::move(key), std::move(v));
      skip_ws();
      if (consume('}')) return obj;
      if (!consume(',')) return err("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace csk::obs
