/// \file
/// Lightweight metrics registry: counters, gauges and histograms keyed by
/// name + labels.
///
/// Simulation components (the hypervisor's per-layer exit accounting, the
/// migration engine's round timeline, ksmd's scan/merge totals, the
/// detectors' probe latencies) publish into a process-global registry;
/// benches snapshot it into BENCH_*.json and tests assert on the snapshot
/// instead of scraping stdout.
///
/// Two properties the simulator depends on:
///   * publishing a metric never touches the simulated clock — observation
///     is free in sim time by construction;
///   * instrument references are stable for the life of the registry:
///     reset() zeroes values but never moves or deletes instruments, so
///     components may cache `Counter*` across test iterations.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "obs/json.h"

namespace csk::obs {

/// Label dimensions for one instrument, e.g. {{"layer","L1"},{"reason","IO"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing count of occurrences (events, bytes, exits).
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_ += n; }
  std::uint64_t value() const { return v_; }

 private:
  friend class MetricsRegistry;
  std::uint64_t v_ = 0;
};

/// Last-written value (a level, not a rate): downtime of the last migration,
/// current shared-frame count, ...
class Gauge {
 public:
  void set(double v) { v_ = v; }
  double value() const { return v_; }

 private:
  friend class MetricsRegistry;
  double v_ = 0.0;
};

/// Moment sketch of an observed distribution (Welford under the hood).
class Histogram {
 public:
  void observe(double x) {
    stats_.add(x);
    sum_ += x;
  }
  const RunningStats& stats() const { return stats_; }
  double sum() const { return sum_; }

 private:
  friend class MetricsRegistry;
  RunningStats stats_;
  double sum_ = 0.0;
};

struct HistogramSummary {
  std::size_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Point-in-time copy of every instrument, keyed by the canonical
/// `name{label=value,...}` string (labels sorted by key). Ordered maps so
/// that serialized snapshots are deterministic.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSummary> histograms;

  bool has(const std::string& key) const;
  std::uint64_t counter_or(const std::string& key,
                           std::uint64_t fallback = 0) const;
  double gauge_or(const std::string& key, double fallback = 0.0) const;
  /// Histogram summary; a zero-count summary when absent.
  HistogramSummary histogram_or(const std::string& key) const;

  /// Folds `other` into this snapshot: counters add, histograms combine
  /// exactly (pooled mean/variance, so merging summaries equals observing
  /// the union), gauges take `other`'s value when both define a key (last
  /// writer in merge order wins — levels have no meaningful sum). Merging a
  /// fixed sequence of snapshots in a fixed order is fully deterministic,
  /// which is what lets the fleet runner produce byte-identical merged
  /// reports regardless of worker count or scheduling.
  void merge_from(const MetricsSnapshot& other);

  JsonValue to_json() const;

  /// Bit-exact serialization for durable artifacts (checkpoints): counters
  /// and histogram counts as hex-u64 strings, every double as its IEEE-754
  /// bit pattern (common/hexcodec). `from_exact_json(to_exact_json())`
  /// reproduces the snapshot byte-for-byte — the property the crash-
  /// consistent resume path depends on. to_json() stays the human/tooling
  /// rendering; this is the storage one.
  JsonValue to_exact_json() const;
  static Result<MetricsSnapshot> from_exact_json(const JsonValue& v);
};

/// Exact pooled combination of two moment summaries.
HistogramSummary merge_summaries(const HistogramSummary& a,
                                 const HistogramSummary& b);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates an instrument. The returned reference stays valid for
  /// the registry's lifetime (reset() included).
  Counter& counter(std::string_view name, const Labels& labels = {});
  Gauge& gauge(std::string_view name, const Labels& labels = {});
  Histogram& histogram(std::string_view name, const Labels& labels = {});

  MetricsSnapshot snapshot() const;

  /// Zeroes every instrument without invalidating cached references.
  void reset();

  std::size_t instruments() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Canonical instrument key: `name` alone, or `name{k1=v1,k2=v2}` with
  /// labels sorted by key.
  static std::string key(std::string_view name, const Labels& labels);

 private:
  // unordered_map mapped references survive rehashing, which is exactly the
  // stability the cached-pointer contract needs.
  std::unordered_map<std::string, Counter> counters_;
  std::unordered_map<std::string, Gauge> gauges_;
  std::unordered_map<std::string, Histogram> histograms_;
};

/// The registry components publish into: the calling thread's scoped
/// registry when a ScopedMetricsRegistry is active, the process-global
/// default otherwise.
///
/// Neither registry is internally synchronized. Single-threaded programs
/// (every bench and example) just use the global. Multi-threaded callers —
/// the fleet runner — must give each worker thread its own registry via
/// ScopedMetricsRegistry so no two threads ever touch the same instance.
MetricsRegistry& metrics();

/// RAII redirect of this thread's metrics() to a private registry. Scopes
/// nest (the previous target is restored on destruction) and the redirect
/// is thread-local: other threads are unaffected. Construct it before the
/// components being measured, so cached Counter* pointers resolve into the
/// scoped registry for their whole lifetime.
class ScopedMetricsRegistry {
 public:
  explicit ScopedMetricsRegistry(MetricsRegistry& target);
  ~ScopedMetricsRegistry();
  ScopedMetricsRegistry(const ScopedMetricsRegistry&) = delete;
  ScopedMetricsRegistry& operator=(const ScopedMetricsRegistry&) = delete;

 private:
  MetricsRegistry* prev_;
};

}  // namespace csk::obs
