#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/hexcodec.h"

namespace csk::obs {

std::string MetricsRegistry::key(std::string_view name, const Labels& labels) {
  std::string out(name);
  if (labels.empty()) return out;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  out += '{';
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ',';
    out += sorted[i].first;
    out += '=';
    out += sorted[i].second;
  }
  out += '}';
  return out;
}

Counter& MetricsRegistry::counter(std::string_view name, const Labels& labels) {
  return counters_[key(name, labels)];
}

Gauge& MetricsRegistry::gauge(std::string_view name, const Labels& labels) {
  return gauges_[key(name, labels)];
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const Labels& labels) {
  return histograms_[key(name, labels)];
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [k, c] : counters_) snap.counters.emplace(k, c.value());
  for (const auto& [k, g] : gauges_) snap.gauges.emplace(k, g.value());
  for (const auto& [k, h] : histograms_) {
    HistogramSummary s;
    s.count = h.stats().count();
    s.sum = h.sum();
    s.mean = h.stats().mean();
    s.stddev = h.stats().stddev();
    s.min = h.stats().min();
    s.max = h.stats().max();
    snap.histograms.emplace(k, s);
  }
  return snap;
}

void MetricsRegistry::reset() {
  for (auto& [k, c] : counters_) c = Counter{};
  for (auto& [k, g] : gauges_) g = Gauge{};
  for (auto& [k, h] : histograms_) h = Histogram{};
}

bool MetricsSnapshot::has(const std::string& key) const {
  return counters.contains(key) || gauges.contains(key) ||
         histograms.contains(key);
}

std::uint64_t MetricsSnapshot::counter_or(const std::string& key,
                                          std::uint64_t fallback) const {
  auto it = counters.find(key);
  return it != counters.end() ? it->second : fallback;
}

double MetricsSnapshot::gauge_or(const std::string& key,
                                 double fallback) const {
  auto it = gauges.find(key);
  return it != gauges.end() ? it->second : fallback;
}

HistogramSummary MetricsSnapshot::histogram_or(const std::string& key) const {
  auto it = histograms.find(key);
  return it != histograms.end() ? it->second : HistogramSummary{};
}

HistogramSummary merge_summaries(const HistogramSummary& a,
                                 const HistogramSummary& b) {
  if (a.count == 0) return b;
  if (b.count == 0) return a;
  HistogramSummary out;
  out.count = a.count + b.count;
  out.sum = a.sum + b.sum;
  const double n1 = static_cast<double>(a.count);
  const double n2 = static_cast<double>(b.count);
  const double n = n1 + n2;
  const double delta = b.mean - a.mean;
  out.mean = a.mean + delta * n2 / n;
  // Chan et al. pairwise update: recover each side's M2 from its sample
  // stddev, combine, and convert back. Exact (up to rounding) — merging
  // summaries is indistinguishable from having observed the union.
  const double m2a = a.count > 1 ? a.stddev * a.stddev * (n1 - 1.0) : 0.0;
  const double m2b = b.count > 1 ? b.stddev * b.stddev * (n2 - 1.0) : 0.0;
  const double m2 = m2a + m2b + delta * delta * n1 * n2 / n;
  out.stddev = out.count > 1 ? std::sqrt(m2 / (n - 1.0)) : 0.0;
  out.min = std::min(a.min, b.min);
  out.max = std::max(a.max, b.max);
  return out;
}

void MetricsSnapshot::merge_from(const MetricsSnapshot& other) {
  for (const auto& [k, v] : other.counters) counters[k] += v;
  for (const auto& [k, v] : other.gauges) gauges[k] = v;
  for (const auto& [k, h] : other.histograms) {
    auto [it, inserted] = histograms.emplace(k, h);
    if (!inserted) it->second = merge_summaries(it->second, h);
  }
}

JsonValue MetricsSnapshot::to_json() const {
  JsonValue counters_json = JsonValue::object();
  for (const auto& [k, v] : counters) counters_json.set(k, v);
  JsonValue gauges_json = JsonValue::object();
  for (const auto& [k, v] : gauges) gauges_json.set(k, v);
  JsonValue hists_json = JsonValue::object();
  for (const auto& [k, h] : histograms) {
    hists_json.set(k, JsonValue::object()
                          .set("count", h.count)
                          .set("sum", h.sum)
                          .set("mean", h.mean)
                          .set("stddev", h.stddev)
                          .set("min", h.min)
                          .set("max", h.max));
  }
  return JsonValue::object()
      .set("counters", std::move(counters_json))
      .set("gauges", std::move(gauges_json))
      .set("histograms", std::move(hists_json));
}

JsonValue MetricsSnapshot::to_exact_json() const {
  JsonValue counters_json = JsonValue::object();
  for (const auto& [k, v] : counters) counters_json.set(k, hex_u64(v));
  JsonValue gauges_json = JsonValue::object();
  for (const auto& [k, v] : gauges) gauges_json.set(k, hex_double(v));
  JsonValue hists_json = JsonValue::object();
  for (const auto& [k, h] : histograms) {
    hists_json.set(k, JsonValue::object()
                          .set("count", hex_u64(h.count))
                          .set("sum", hex_double(h.sum))
                          .set("mean", hex_double(h.mean))
                          .set("stddev", hex_double(h.stddev))
                          .set("min", hex_double(h.min))
                          .set("max", hex_double(h.max)));
  }
  return JsonValue::object()
      .set("counters", std::move(counters_json))
      .set("gauges", std::move(gauges_json))
      .set("histograms", std::move(hists_json));
}

namespace {

Status expect_object(const JsonValue* v, const char* what) {
  if (v == nullptr || !v->is_object()) {
    return invalid_argument(std::string("exact snapshot: missing object '") +
                            what + "'");
  }
  return Status::ok();
}

Result<std::uint64_t> member_hex_u64(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_string()) {
    return invalid_argument(std::string("exact snapshot: missing '") + key +
                            "'");
  }
  return parse_hex_u64(v->as_string());
}

Result<double> member_hex_double(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_string()) {
    return invalid_argument(std::string("exact snapshot: missing '") + key +
                            "'");
  }
  return parse_hex_double(v->as_string());
}

}  // namespace

Result<MetricsSnapshot> MetricsSnapshot::from_exact_json(const JsonValue& v) {
  MetricsSnapshot snap;
  const JsonValue* counters_json = v.find("counters");
  const JsonValue* gauges_json = v.find("gauges");
  const JsonValue* hists_json = v.find("histograms");
  CSK_RETURN_IF_ERROR(expect_object(counters_json, "counters"));
  CSK_RETURN_IF_ERROR(expect_object(gauges_json, "gauges"));
  CSK_RETURN_IF_ERROR(expect_object(hists_json, "histograms"));
  for (const auto& [k, val] : counters_json->as_object()) {
    if (!val.is_string()) return invalid_argument("counter not a hex string");
    CSK_ASSIGN_OR_RETURN(std::uint64_t c, parse_hex_u64(val.as_string()));
    snap.counters.emplace(k, c);
  }
  for (const auto& [k, val] : gauges_json->as_object()) {
    if (!val.is_string()) return invalid_argument("gauge not a hex string");
    CSK_ASSIGN_OR_RETURN(double g, parse_hex_double(val.as_string()));
    snap.gauges.emplace(k, g);
  }
  for (const auto& [k, val] : hists_json->as_object()) {
    if (!val.is_object()) return invalid_argument("histogram not an object");
    HistogramSummary s;
    CSK_ASSIGN_OR_RETURN(s.count, member_hex_u64(val, "count"));
    CSK_ASSIGN_OR_RETURN(s.sum, member_hex_double(val, "sum"));
    CSK_ASSIGN_OR_RETURN(s.mean, member_hex_double(val, "mean"));
    CSK_ASSIGN_OR_RETURN(s.stddev, member_hex_double(val, "stddev"));
    CSK_ASSIGN_OR_RETURN(s.min, member_hex_double(val, "min"));
    CSK_ASSIGN_OR_RETURN(s.max, member_hex_double(val, "max"));
    snap.histograms.emplace(k, s);
  }
  return snap;
}

namespace {
thread_local MetricsRegistry* tls_registry = nullptr;
}  // namespace

MetricsRegistry& metrics() {
  if (tls_registry != nullptr) return *tls_registry;
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

ScopedMetricsRegistry::ScopedMetricsRegistry(MetricsRegistry& target)
    : prev_(tls_registry) {
  tls_registry = &target;
}

ScopedMetricsRegistry::~ScopedMetricsRegistry() { tls_registry = prev_; }

}  // namespace csk::obs
