#include "obs/metrics.h"

#include <algorithm>

namespace csk::obs {

std::string MetricsRegistry::key(std::string_view name, const Labels& labels) {
  std::string out(name);
  if (labels.empty()) return out;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  out += '{';
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ',';
    out += sorted[i].first;
    out += '=';
    out += sorted[i].second;
  }
  out += '}';
  return out;
}

Counter& MetricsRegistry::counter(std::string_view name, const Labels& labels) {
  return counters_[key(name, labels)];
}

Gauge& MetricsRegistry::gauge(std::string_view name, const Labels& labels) {
  return gauges_[key(name, labels)];
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const Labels& labels) {
  return histograms_[key(name, labels)];
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [k, c] : counters_) snap.counters.emplace(k, c.value());
  for (const auto& [k, g] : gauges_) snap.gauges.emplace(k, g.value());
  for (const auto& [k, h] : histograms_) {
    HistogramSummary s;
    s.count = h.stats().count();
    s.sum = h.sum();
    s.mean = h.stats().mean();
    s.stddev = h.stats().stddev();
    s.min = h.stats().min();
    s.max = h.stats().max();
    snap.histograms.emplace(k, s);
  }
  return snap;
}

void MetricsRegistry::reset() {
  for (auto& [k, c] : counters_) c = Counter{};
  for (auto& [k, g] : gauges_) g = Gauge{};
  for (auto& [k, h] : histograms_) h = Histogram{};
}

bool MetricsSnapshot::has(const std::string& key) const {
  return counters.contains(key) || gauges.contains(key) ||
         histograms.contains(key);
}

std::uint64_t MetricsSnapshot::counter_or(const std::string& key,
                                          std::uint64_t fallback) const {
  auto it = counters.find(key);
  return it != counters.end() ? it->second : fallback;
}

double MetricsSnapshot::gauge_or(const std::string& key,
                                 double fallback) const {
  auto it = gauges.find(key);
  return it != gauges.end() ? it->second : fallback;
}

HistogramSummary MetricsSnapshot::histogram_or(const std::string& key) const {
  auto it = histograms.find(key);
  return it != histograms.end() ? it->second : HistogramSummary{};
}

JsonValue MetricsSnapshot::to_json() const {
  JsonValue counters_json = JsonValue::object();
  for (const auto& [k, v] : counters) counters_json.set(k, v);
  JsonValue gauges_json = JsonValue::object();
  for (const auto& [k, v] : gauges) gauges_json.set(k, v);
  JsonValue hists_json = JsonValue::object();
  for (const auto& [k, h] : histograms) {
    hists_json.set(k, JsonValue::object()
                          .set("count", h.count)
                          .set("sum", h.sum)
                          .set("mean", h.mean)
                          .set("stddev", h.stddev)
                          .set("min", h.min)
                          .set("max", h.max));
  }
  return JsonValue::object()
      .set("counters", std::move(counters_json))
      .set("gauges", std::move(gauges_json))
      .set("histograms", std::move(hists_json));
}

MetricsRegistry& metrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace csk::obs
