// attack_demo — the paper's §V-A demonstration video, as a transcript.
//
// Installs a CloudSkulk rootkit against a 1 GiB Fedora-like guest on one
// simulated physical machine, narrating every step with simulated
// timestamps, then shows what the host administrator and the victim each
// see afterwards.
//
//   $ ./build/examples/attack_demo
#include <cstdio>

#include "cloudskulk/installer.h"
#include "vmm/monitor.h"

using namespace csk;
using namespace csk::vmm;

namespace {
void banner(const char* text) { std::printf("\n--- %s ---\n", text); }
}  // namespace

int main() {
  World world;
  World::HostConfig host_cfg;
  host_cfg.boot_touched_mib = 480;  // Fedora 22 workstation, post-boot
  Host* host = world.make_host(host_cfg);

  banner("the cloud before the attack");
  MachineConfig victim_cfg;
  victim_cfg.name = "guest0";
  victim_cfg.memory_mb = 1024;
  victim_cfg.drives.push_back({"fedora22.qcow2", "qcow2", 20480});
  NetdevConfig nd;
  nd.hostfwd.push_back({2222, 22});
  victim_cfg.netdevs.push_back(nd);
  victim_cfg.monitor.telnet_port = 5555;
  VirtualMachine* victim = host->launch_vm(victim_cfg).value();
  std::printf("tenant VM '%s' running (pid %d), ssh reachable at host0:2222\n",
              victim->name().c_str(),
              host->pid_of_vm(victim->id()).value().value());
  host->append_history(victim_cfg.to_command_line());

  banner("attacker (with host root) installs CloudSkulk");
  cloudskulk::InstallerOptions opts;  // AAAA=4444, BBBB=4445 as in §IV-A
  cloudskulk::CloudSkulkInstaller installer(host, opts);
  const cloudskulk::InstallReport report = installer.install();
  for (const std::string& line : report.log) {
    std::printf("  [%8.2fs] %s\n", world.simulator().now().seconds_f(),
                line.c_str());
  }
  if (!report.succeeded) {
    std::printf("install FAILED: %s\n", report.error.c_str());
    return 1;
  }
  std::printf("install complete in %s (paper: \"less than 1 minute\")\n",
              report.total_time.to_string().c_str());

  banner("what the host administrator sees (ps -ef)");
  for (const auto& p : host->ps()) {
    std::printf("  %5d  %-16s %s\n", p.pid.value(), p.comm.c_str(),
                p.cmdline.substr(0, 90).c_str());
  }
  auto mon = host->connect_monitor(5555).value();
  std::printf("  (qemu) info status -> %s\n",
              mon->execute("info status").value().c_str());

  banner("what is actually running");
  VirtualMachine* rootkit = installer.rootkit_vm();
  VirtualMachine* nested = installer.nested_vm();
  std::printf("  %s: L%d rootkit VM (GuestX), hosting an L%d nested guest\n",
              rootkit->name().c_str(), static_cast<int>(rootkit->layer()) ,
              static_cast<int>(nested->layer()));
  std::printf("  victim OS (hostname %s) now executes at L2; its sshd: %s\n",
              nested->os()->identity().hostname.c_str(),
              nested->os()->find_process_by_name("sshd").is_ok()
                  ? "running"
                  : "missing");

  banner("offensive VMI from the rootkit (attacker's view of the victim)");
  auto table = installer.ritm()->introspect_victim();
  if (table.is_ok()) {
    std::printf("  victim kernel: %s\n",
                table->identity.kernel_version.c_str());
    for (const auto& p : table->procs) {
      std::printf("    %5d %s\n", p.pid.value(), p.name.c_str());
    }
  }

  banner("migration statistics");
  const MigrationStats& m = report.migration;
  std::printf("  end-to-end %s, downtime %s, rounds %d\n",
              m.total_time.to_string().c_str(),
              m.downtime.to_string().c_str(), m.rounds);
  std::printf("  pages: %llu content + %llu zero, %.1f MiB on the wire\n",
              static_cast<unsigned long long>(m.pages_transferred),
              static_cast<unsigned long long>(m.zero_pages),
              static_cast<double>(m.wire_bytes) / (1024.0 * 1024.0));
  return 0;
}
