// passive_sniffer — the paper's §IV-B1 passive services, live.
//
// After installing CloudSkulk, the attacker attaches a packet logger and a
// keystroke logger at the RITM position, takes VMI snapshots of the victim,
// and deploys a parallel malicious OS — all without perturbing a single
// victim packet.
//
//   $ ./build/examples/passive_sniffer
#include <cstdio>

#include "cloudskulk/installer.h"
#include "cloudskulk/services/passive.h"
#include "vmm/host.h"

using namespace csk;

int main() {
  vmm::World world;
  vmm::World::HostConfig host_cfg;
  host_cfg.boot_touched_mib = 64;
  vmm::Host* host = world.make_host(host_cfg);

  vmm::MachineConfig cfg;
  cfg.name = "guest0";
  cfg.memory_mb = 256;
  cfg.drives.push_back({"guest0.qcow2", "qcow2", 20480});
  vmm::NetdevConfig nd;
  nd.hostfwd.push_back({2222, 22});
  cfg.netdevs.push_back(nd);
  cfg.monitor.telnet_port = 5555;
  (void)host->launch_vm_cmdline(cfg.to_command_line());

  cloudskulk::InstallerOptions opts;
  opts.rootkit_boot_touched_mib = 32;
  cloudskulk::CloudSkulkInstaller installer(host, opts);
  if (!installer.install().succeeded) return 1;
  std::printf("CloudSkulk in place; victim nested at L2.\n\n");

  // The victim's sshd echoes; the attacker's taps sit in the middle.
  vmm::VirtualMachine* nested = installer.nested_vm();
  (void)nested->bind_guest_port(Port(22), [&](net::Packet pkt) {
    net::Packet reply = pkt;
    reply.kind = net::ProtoKind::kSshOutput;
    reply.src = net::NetAddr{nested->node_name(), Port(22)};
    reply.payload = "$ ";
    reply.wire_bytes = 42;
    world.network().send(pkt.reply_to, std::move(reply));
  });

  cloudskulk::PacketLogger sniffer(&world.simulator());
  cloudskulk::KeystrokeLogger keylogger(&world.simulator());
  installer.ritm()->add_tap(&sniffer);
  installer.ritm()->add_tap(&keylogger);

  cloudskulk::VmiMonitor vmi(&world.simulator(), installer.ritm());
  vmi.start(SimDuration::seconds(5));

  // The victim types an ssh session, oblivious.
  (void)world.network().bind({"victim-laptop", Port(51000)},
                             [](net::Packet) {});
  const ConnId conn = world.network().new_conn();
  const char* session[] = {"ls -la\n", "vim secrets.txt\n",
                           "password: hunter2\n", "git push\n", "exit\n"};
  for (const char* keys : session) {
    net::Packet p;
    p.conn = conn;
    p.kind = net::ProtoKind::kSshKeystroke;
    p.src = {"victim-laptop", Port(51000)};
    p.reply_to = p.src;
    p.payload = keys;
    p.wire_bytes = p.payload.size() + 40;
    world.network().send({host->node_name(), Port(2222)}, p);
    world.simulator().run_for(SimDuration::seconds(3));
  }
  // Victim starts something interesting mid-observation.
  nested->os()->spawn("pg_dump", "/usr/bin/pg_dump payroll");
  world.simulator().run_for(SimDuration::seconds(6));

  std::printf("packet log (%zu packets, %llu bytes observed):\n",
              sniffer.entries().size(),
              static_cast<unsigned long long>(sniffer.total_bytes()));
  for (const auto& e : sniffer.entries()) {
    std::printf("  [%7.2fs] %-7s %-14s %4llu B  %.32s\n",
                e.when.seconds_f(),
                e.dir == net::PacketTap::Direction::kForward ? "->" : "<-",
                net::proto_kind_name(e.kind),
                static_cast<unsigned long long>(e.bytes),
                e.excerpt.c_str());
  }

  std::printf("\nkeystroke transcript (%zu keys):\n%s\n",
              keylogger.keystrokes(), keylogger.transcript().c_str());

  std::printf("VMI monitor: %zu snapshots; victim started since first: ",
              vmi.history().size());
  for (const auto& name : vmi.new_processes_since_first()) {
    std::printf("%s ", name.c_str());
  }
  std::printf("\n\n");

  cloudskulk::ParallelMaliciousOs::Options evil_opts;
  evil_opts.memory_mb = 32;
  cloudskulk::ParallelMaliciousOs evil(installer.ritm(), evil_opts);
  if (evil.deploy().is_ok()) {
    std::printf("parallel malicious OS '%s' deployed beside the victim "
                "(phishd, spam-relay, ddos-zombie running at L2)\n",
                evil.vm()->name().c_str());
  }
  return 0;
}
