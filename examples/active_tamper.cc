// active_tamper — the paper's §IV-B2 active services.
//
// The victim runs an email + web service. The RITM silently deletes mail
// about a specific topic, drops chosen web requests, and rewrites web
// responses on their way to clients — the integrity attacks §IV-B2 warns
// about (online banking being the canonical example).
//
//   $ ./build/examples/active_tamper
#include <cstdio>

#include "cloudskulk/installer.h"
#include "cloudskulk/services/active.h"
#include "vmm/host.h"

using namespace csk;

int main() {
  vmm::World world;
  vmm::World::HostConfig host_cfg;
  host_cfg.boot_touched_mib = 64;
  vmm::Host* host = world.make_host(host_cfg);

  vmm::MachineConfig cfg;
  cfg.name = "guest0";
  cfg.memory_mb = 256;
  cfg.drives.push_back({"guest0.qcow2", "qcow2", 20480});
  vmm::NetdevConfig nd;
  nd.hostfwd.push_back({2525, 25});  // SMTP
  nd.hostfwd.push_back({8080, 80});  // HTTP
  cfg.netdevs.push_back(nd);
  cfg.monitor.telnet_port = 5555;
  (void)host->launch_vm_cmdline(cfg.to_command_line());

  cloudskulk::InstallerOptions opts;
  opts.rootkit_boot_touched_mib = 32;
  cloudskulk::CloudSkulkInstaller installer(host, opts);
  if (!installer.install().succeeded) return 1;
  vmm::VirtualMachine* nested = installer.nested_vm();

  // Victim services: a mail spool and a tiny bank.
  std::vector<std::string> mail_spool;
  (void)nested->bind_guest_port(Port(25), [&](net::Packet pkt) {
    mail_spool.push_back(pkt.payload.str());
  });
  (void)nested->bind_guest_port(Port(80), [&](net::Packet pkt) {
    net::Packet reply = pkt;
    reply.kind = net::ProtoKind::kHttpResponse;
    reply.src = net::NetAddr{nested->node_name(), Port(80)};
    reply.payload = "HTTP/1.1 200 OK\nbalance: $5000\n";
    reply.wire_bytes = reply.payload.size() + 40;
    world.network().send(pkt.reply_to, std::move(reply));
  });

  // The attacker's tamper rules.
  cloudskulk::PacketTamperer tamperer;
  tamperer.add_rule(cloudskulk::make_email_dropper("ACME-MERGER"));
  tamperer.add_rule(cloudskulk::make_web_request_dropper("/admin"));
  tamperer.add_rule(
      cloudskulk::make_web_response_rewriter("balance: $5000",
                                             "balance: $137"));
  installer.ritm()->add_tap(&tamperer);

  auto send = [&](std::uint16_t host_port, net::ProtoKind kind,
                  const std::string& payload) {
    net::Packet p;
    p.conn = world.network().new_conn();
    p.kind = kind;
    p.src = {"client", Port(40000)};
    p.reply_to = p.src;
    p.payload = payload;
    p.wire_bytes = payload.size() + 40;
    world.network().send({host->node_name(), Port(host_port)}, p);
    world.simulator().run_for(SimDuration::seconds(1));
  };
  std::vector<std::string> client_rx;
  (void)world.network().bind({"client", Port(40000)}, [&](net::Packet p) {
    client_rx.push_back(p.payload.str());
  });

  std::printf("sending three emails to the victim's mail server...\n");
  send(2525, net::ProtoKind::kSmtpMail, "Subject: lunch on friday?");
  send(2525, net::ProtoKind::kSmtpMail, "Subject: ACME-MERGER term sheet");
  send(2525, net::ProtoKind::kSmtpMail, "Subject: weekly report");
  std::printf("mail that actually arrived (%zu of 3):\n", mail_spool.size());
  for (const auto& m : mail_spool) std::printf("  %s\n", m.c_str());

  std::printf("\nweb requests...\n");
  send(8080, net::ProtoKind::kHttpRequest, "GET /balance");
  send(8080, net::ProtoKind::kHttpRequest, "GET /admin/users");
  std::printf("client received %zu responses (the /admin request vanished):\n",
              client_rx.size());
  for (const auto& r : client_rx) std::printf("  %s\n", r.c_str());

  std::printf("\ntamper rule statistics:\n");
  for (std::size_t i = 0; i < tamperer.rules().size(); ++i) {
    const auto& s = tamperer.stats()[i];
    std::printf("  %-22s matched %llu, dropped %llu, rewritten %llu\n",
                tamperer.rules()[i].name.c_str(),
                static_cast<unsigned long long>(s.matched),
                static_cast<unsigned long long>(s.dropped),
                static_cast<unsigned long long>(s.rewritten));
  }
  return 0;
}
