// Quickstart: build a simulated cloud host, launch a guest, poke at it
// through the QEMU monitor, and run a live migration — the substrate
// everything else in this repository is made of.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "vmm/host.h"
#include "vmm/migration.h"
#include "vmm/monitor.h"

using namespace csk;
using namespace csk::vmm;

int main() {
  // A World owns the simulated clock, network and hosts.
  World world;
  World::HostConfig host_cfg;
  host_cfg.name = "host0";
  host_cfg.boot_touched_mib = 128;  // guest RAM resident after boot
  Host* host = world.make_host(host_cfg);

  // Launch a VM from a QEMU command line, exactly as an operator would.
  const char* cmdline =
      "qemu-system-x86_64 -enable-kvm -machine pc-i440fx-2.9 -name demo "
      "-m 512 -smp 1 -drive file=demo.qcow2,format=qcow2,size_mb=20480 "
      "-netdev user,id=net0,hostfwd=tcp::2222-:22 "
      "-device virtio-net-pci,netdev=net0,mac=52:54:00:12:34:56 "
      "-monitor telnet:127.0.0.1:5555,server,nowait -display none";
  VirtualMachine* vm = host->launch_vm_cmdline(cmdline).value();
  std::printf("launched '%s' (L%d guest, pid %d)\n", vm->name().c_str(),
              static_cast<int>(vm->layer()),
              host->pid_of_vm(vm->id()).value().value());

  // Talk to it over the monitor.
  QemuMonitor* mon = host->connect_monitor(5555).value();
  for (const char* cmd : {"info status", "info mtree", "info network"}) {
    std::printf("\n(qemu) %s\n%s", cmd, mon->execute(cmd).value().c_str());
  }

  // The guest runs an OS with processes and files.
  vm->os()->spawn("nginx", "/usr/sbin/nginx");
  std::printf("\nguest processes:\n");
  for (const auto& p : vm->os()->ps()) {
    std::printf("  %5d %s\n", p.pid.value(), p.name.c_str());
  }

  // Live-migrate it into a second VM on the same host.
  auto dest_cfg = vm->config();
  dest_cfg.name = "demo-dst";
  dest_cfg.monitor.telnet_port = 0;
  dest_cfg.netdevs[0].hostfwd.clear();
  dest_cfg.incoming_port = 4444;
  VirtualMachine* dest = host->launch_vm(dest_cfg).value();

  std::printf("\n(qemu) migrate -d tcp:host0:4444\n");
  (void)mon->execute("migrate -d tcp:host0:4444");
  while (mon->active_migration() != nullptr &&
         !mon->active_migration()->done()) {
    if (!world.simulator().step()) break;
  }
  const MigrationStats& stats = mon->active_migration()->stats();
  std::printf("migration %s: %s end-to-end, downtime %s, %d rounds, "
              "%llu pages (%llu zero)\n",
              stats.succeeded ? "completed" : "FAILED",
              stats.total_time.to_string().c_str(),
              stats.downtime.to_string().c_str(), stats.rounds,
              static_cast<unsigned long long>(stats.pages_transferred),
              static_cast<unsigned long long>(stats.zero_pages));
  std::printf("destination now %s, nginx still running: %s\n",
              vm_state_name(dest->state()),
              dest->os()->find_process_by_name("nginx").is_ok() ? "yes"
                                                                : "no");
  return 0;
}
