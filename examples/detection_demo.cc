// detection_demo — the defender's side of the paper (§VI).
//
// Runs the memory-deduplication detector against a clean host and against a
// CloudSkulk-infected host, then shows where the two baseline approaches
// (VMI fingerprinting, VMCS memory forensics) succeed and fail.
//
//   $ ./build/examples/detection_demo
#include <cstdio>

#include "cloudskulk/installer.h"
#include "detect/dedup_detector.h"
#include "detect/vmcs_scan.h"
#include "detect/vmi_fingerprint.h"
#include "vmm/host.h"

using namespace csk;

namespace {

void banner(const char* text) { std::printf("\n--- %s ---\n", text); }

vmm::MachineConfig tenant_config() {
  vmm::MachineConfig cfg;
  cfg.name = "guest0";
  cfg.memory_mb = 512;
  cfg.drives.push_back({"fedora22.qcow2", "qcow2", 20480});
  vmm::NetdevConfig nd;
  nd.hostfwd.push_back({2222, 22});
  cfg.netdevs.push_back(nd);
  cfg.monitor.telnet_port = 5555;
  return cfg;
}

vmm::World::HostConfig host_config() {
  vmm::World::HostConfig cfg;
  cfg.boot_touched_mib = 128;
  cfg.ksm.pages_per_scan = 5000;  // tuned ksmd for a short probe
  return cfg;
}

void print_report(const detect::DedupDetectionReport& r) {
  std::printf("  t0 (baseline)  mean %6.2f us\n", r.t0.summary.mean);
  std::printf("  t1 (step 1)    mean %6.2f us  -> merged: %s\n",
              r.t1.summary.mean, r.step1_merged ? "yes" : "no");
  std::printf("  t2 (step 2)    mean %6.2f us  -> merged: %s\n",
              r.t2.summary.mean, r.step2_merged ? "yes" : "no");
  std::printf("  verdict: %s\n    %s\n", dedup_verdict_name(r.verdict),
              r.explanation.c_str());
}

}  // namespace

int main() {
  detect::DedupDetectorConfig dcfg;
  dcfg.file_pages = 100;  // a 400 KiB "mp3", as in the paper
  dcfg.merge_wait = SimDuration::seconds(30);

  banner("scenario 1: honest host — guest0 is what it claims to be");
  {
    vmm::World world;
    vmm::Host* host = world.make_host(host_config());
    vmm::VirtualMachine* guest0 = host->launch_vm(tenant_config()).value();
    detect::DedupDetector detector(host, dcfg);
    (void)detector.seed_guest(guest0->os());  // vendor web-interface push
    auto report = detector.run(guest0->os());
    print_report(report.value());
  }

  banner("scenario 2: CloudSkulk installed — guest0 is the rootkit's mask");
  {
    vmm::World world;
    vmm::Host* host = world.make_host(host_config());
    (void)host->launch_vm_cmdline(tenant_config().to_command_line());
    cloudskulk::InstallerOptions opts;
    opts.rootkit_boot_touched_mib = 64;
    cloudskulk::CloudSkulkInstaller installer(host, opts);
    const auto install = installer.install();
    if (!install.succeeded) {
      std::printf("install failed: %s\n", install.error.c_str());
      return 1;
    }
    std::printf("(attack installed silently in %s)\n",
                install.total_time.to_string().c_str());

    detect::DedupDetector detector(host, dcfg);
    (void)detector.seed_guest(installer.nested_vm()->os());
    // The impersonating L1 mirrors whatever the guest should hold (§VI-D2).
    (void)detector.seed_guest(installer.rootkit_vm()->os());
    auto report = detector.run(installer.nested_vm()->os());
    print_report(report.value());

    banner("baseline 1: VMI fingerprinting (§VI-E) — evaded");
    guestos::GuestOS* l1 = installer.rootkit_vm()->os();
    for (const auto& name : {"qemu-system-x86", "kvm"}) {
      auto p = l1->find_process_by_name(name);
      if (p.is_ok()) (void)l1->hide_process(p->pid);
    }
    detect::VmiFingerprintDetector vmi(host);
    detect::VmBaseline baseline;
    baseline.vm_name = "guest0";
    baseline.identity.hostname = "guest0";
    baseline.expected_processes = {"init", "sshd"};
    const auto vmi_report = vmi.check({baseline});
    std::printf("  anomalies found: %zu -> %s\n", vmi_report.anomalies.size(),
                vmi_report.suspicious()
                    ? "suspicious"
                    : "looks clean (the impersonation held)");

    banner("baseline 2: VMCS memory forensics (§VI-E) — signature-bound");
    detect::VmcsScanDetector vmcs(host);
    const auto scan = vmcs.scan();
    std::printf("  with the stock signature database: %s\n",
                scan.hypervisor_found()
                    ? "L1 hypervisor found (VT-x structures located)"
                    : "nothing found");
    std::printf("  (an unknown VMCS revision id walks right past it — see "
                "bench_ablation_exit_multiplier and the paper's critique)\n");
  }
  return 0;
}
