// Memory hot-path scaling sweep.
//
// Measures the three operations every paper experiment funnels through —
// the KSM scan loop, dirty-log harvest, and a migration pre-copy round —
// across guest RAM sizes from 64 MiB to 4 GiB, and compares the dense
// page-table / bitmap / zero-copy implementation against a faithful
// re-creation of the previous layout (per-gfn unordered_maps, snapshot +
// sort cursors, frame-keyed volatile stamps, deep-copied page bytes).
//
// Unlike the figure benches this one measures wall-clock throughput of the
// simulator's own data structures, not simulated time: the sweep exists to
// keep the hot path honest as cell sizes grow (ROADMAP "make a hot path
// measurably faster"). The legacy emulation lives entirely in this file so
// the comparison survives the old implementation's removal.
//
// CSK_BENCH_TINY=1 shrinks the sweep to two small cells for CI smoke runs.
#include <chrono>
#include <cstdlib>
#include <optional>
#include <unordered_map>

#include "bench_util.h"
#include "mem/addr_space.h"
#include "mem/ksm.h"
#include "sim/simulator.h"

namespace {

using namespace csk;
using csk::bench::Table;

constexpr std::size_t kPagesPerMib = 256;  // 4 KiB pages

struct Cell {
  std::size_t ram_mib;
  double ksm_new_pps = 0, ksm_legacy_pps = 0;
  double dirty_new_pps = 0, dirty_legacy_pps = 0;
  double precopy_new_pps = 0, precopy_legacy_pps = 0;
};

bool tiny() {
  const char* v = std::getenv("CSK_BENCH_TINY");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

std::vector<std::size_t> ram_sizes_mib() {
  if (tiny()) return {4, 8};
  return {64, 256, 1024, 2048, 4096};
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Distinct synthetic page content per (gfn, generation): every page looks
// freshly dirtied to the KSM volatile filter, the realistic steady state of
// an active guest.
ContentHash page_hash(std::uint64_t gfn, std::uint64_t generation) {
  return hash_combine(ContentHash{0x9E3779B97F4A7C15ull + generation}, gfn);
}

// ------------------------------------------------------------------ legacy
// The pre-overhaul structures, reproduced 1:1 from the old csk::mem: hash
// maps keyed by gfn / frame number, optional<vector> page payloads, and the
// snapshot-and-sort scan cursor. Deliberately kept dumb — this is the
// baseline the acceptance criterion measures against.

struct LegacyPage {
  ContentHash hash;
  std::optional<mem::PageBytes> bytes;
};

struct LegacyFrame {
  LegacyPage data;
};

struct LegacyWorld {
  std::unordered_map<std::uint64_t, LegacyFrame> frames;  // frame -> content
  std::unordered_map<std::uint64_t, std::uint64_t> table;  // gfn -> frame
  std::unordered_map<std::uint64_t, bool> dirty;
  std::unordered_map<std::uint64_t, ContentHash> last_seen;  // frame-keyed
  std::uint64_t next_frame = 1;

  void write(std::uint64_t gfn, LegacyPage page) {
    auto it = table.find(gfn);
    if (it == table.end()) {
      const std::uint64_t f = next_frame++;
      table.emplace(gfn, f);
      frames.emplace(f, LegacyFrame{std::move(page)});
    } else {
      frames.find(it->second)->second.data = std::move(page);
    }
    dirty[gfn] = true;
  }

  std::vector<std::uint64_t> sorted_snapshot() const {
    std::vector<std::uint64_t> snap;
    snap.reserve(table.size());
    for (const auto& [gfn, f] : table) snap.push_back(gfn);
    std::sort(snap.begin(), snap.end());
    return snap;
  }

  // One KSM sweep as the old cursor ran it: materialize + sort the mapped
  // set, then per page translate, frame lookup and volatile-filter check.
  std::size_t ksm_sweep() {
    std::size_t scanned = 0;
    for (std::uint64_t gfn : sorted_snapshot()) {
      auto it = table.find(gfn);
      if (it == table.end()) continue;
      auto fit = frames.find(it->second);
      if (fit == frames.end()) continue;
      const ContentHash h = fit->second.data.hash;
      ++scanned;
      auto ls = last_seen.find(it->second);
      if (ls == last_seen.end() || ls->second != h) {
        last_seen[it->second] = h;
        continue;  // volatile: revisit next pass
      }
      // (tree lookups would follow; with actively-dirtied memory the
      // volatile filter rejects every page, same as the new path.)
    }
    return scanned;
  }

  std::vector<std::uint64_t> fetch_and_reset_dirty() {
    std::vector<std::uint64_t> out;
    out.reserve(dirty.size());
    for (const auto& [gfn, _] : dirty) out.push_back(gfn);
    std::sort(out.begin(), out.end());
    dirty.clear();
    return out;
  }

  // One pre-copy enumeration round: sorted snapshot, then deep-copy each
  // page's content into the outgoing chunk, as read_page() used to.
  std::size_t precopy_round() const {
    std::size_t copied = 0;
    std::uint64_t sink = 0;
    for (std::uint64_t gfn : sorted_snapshot()) {
      auto it = table.find(gfn);
      auto fit = frames.find(it->second);
      LegacyPage page = fit->second.data;  // deep copy, bytes included
      sink += page.hash.value + (page.bytes ? page.bytes->size() : 0);
      ++copied;
    }
    benchmark::DoNotOptimize(sink);
    return copied;
  }
};

// --------------------------------------------------------------- the sweep

Cell run_cell(std::size_t ram_mib) {
  Cell cell;
  cell.ram_mib = ram_mib;
  const std::size_t pages = ram_mib * kPagesPerMib;
  const std::size_t byte_backed_every = 64;  // 1/64 of pages carry bytes
  const std::size_t sweeps = 3;

  // --- new implementation ---
  {
    sim::Simulator simulator;
    mem::HostPhysicalMemory phys;
    mem::AddressSpace space(&phys, pages, "cell");
    mem::KsmDaemon ksm(&simulator, &phys, {});
    ksm.register_region(&space);
    space.enable_dirty_log();

    auto populate = [&](std::uint64_t generation) {
      for (std::uint64_t g = 0; g < pages; ++g) {
        if (g % byte_backed_every == 0) {
          mem::PageBytes b(mem::kPageSize,
                           static_cast<std::uint8_t>(g + generation));
          space.write_page(Gfn(g), mem::PageData::from_bytes(std::move(b)));
        } else {
          space.write_page(Gfn(g),
                           mem::PageData::synthetic(page_hash(g, generation)));
        }
      }
    };

    // KSM scan: every sweep sees freshly-dirtied memory (re-populated
    // between sweeps, outside the timed region).
    double elapsed = 0;
    std::uint64_t scanned = 0;
    for (std::size_t s = 0; s < sweeps; ++s) {
      populate(s);
      space.fetch_and_reset_dirty();  // keep the dirty log out of this lane
      const std::uint64_t before = ksm.stats().pages_scanned;
      const double t0 = now_s();
      ksm.scan_batch(pages + 1);  // one full sweep of the single region
      elapsed += now_s() - t0;
      scanned += ksm.stats().pages_scanned - before;
    }
    cell.ksm_new_pps = static_cast<double>(scanned) / elapsed;

    // Dirty harvest: re-dirty 1/16 of pages between timed harvests. Two
    // untimed warm-up cycles first — the first harvests after population
    // pay a heap-allocator transient (freed byte payloads churning the free
    // lists) that is noise, not data-structure cost; the lane measures the
    // steady state.
    for (std::size_t s = 0; s < 2; ++s) {
      for (std::uint64_t g = 0; g < pages; g += 16) {
        space.write_page(Gfn(g), mem::PageData::synthetic(page_hash(g, 80 + s)));
      }
      (void)space.fetch_and_reset_dirty();
    }
    elapsed = 0;
    std::uint64_t harvested = 0;
    for (std::size_t s = 0; s < sweeps; ++s) {
      for (std::uint64_t g = 0; g < pages; g += 16) {
        space.write_page(Gfn(g), mem::PageData::synthetic(page_hash(g, 90 + s)));
      }
      const double t0 = now_s();
      const auto got = space.fetch_and_reset_dirty();
      elapsed += now_s() - t0;
      harvested += got.size();
    }
    cell.dirty_new_pps = static_cast<double>(harvested) / elapsed;

    // Pre-copy round: zero-copy enumeration of all resident pages.
    elapsed = 0;
    std::uint64_t copied = 0;
    for (std::size_t s = 0; s < sweeps; ++s) {
      std::vector<std::pair<Gfn, mem::PageData>> chunk;
      chunk.reserve(pages);
      const double t0 = now_s();
      space.visit_mapped([&](Gfn g, const mem::PageData& page) {
        chunk.emplace_back(g, page);  // shares the byte payload
      });
      elapsed += now_s() - t0;
      copied += chunk.size();
    }
    cell.precopy_new_pps = static_cast<double>(copied) / elapsed;
  }

  // --- legacy emulation ---
  {
    LegacyWorld world;
    auto populate = [&](std::uint64_t generation) {
      for (std::uint64_t g = 0; g < pages; ++g) {
        if (g % byte_backed_every == 0) {
          world.write(g, LegacyPage{page_hash(g, generation),
                                    mem::PageBytes(
                                        mem::kPageSize,
                                        static_cast<std::uint8_t>(g + generation))});
        } else {
          world.write(g, LegacyPage{page_hash(g, generation), std::nullopt});
        }
      }
    };

    double elapsed = 0;
    std::uint64_t scanned = 0;
    for (std::size_t s = 0; s < sweeps; ++s) {
      populate(s);
      world.fetch_and_reset_dirty();
      const double t0 = now_s();
      scanned += world.ksm_sweep();
      elapsed += now_s() - t0;
    }
    cell.ksm_legacy_pps = static_cast<double>(scanned) / elapsed;

    // Same two untimed warm-up cycles as the new-implementation lane.
    for (std::size_t s = 0; s < 2; ++s) {
      for (std::uint64_t g = 0; g < pages; g += 16) {
        world.write(g, LegacyPage{page_hash(g, 80 + s), std::nullopt});
      }
      (void)world.fetch_and_reset_dirty();
    }
    elapsed = 0;
    std::uint64_t harvested = 0;
    for (std::size_t s = 0; s < sweeps; ++s) {
      for (std::uint64_t g = 0; g < pages; g += 16) {
        world.write(g, LegacyPage{page_hash(g, 90 + s), std::nullopt});
      }
      const double t0 = now_s();
      harvested += world.fetch_and_reset_dirty().size();
      elapsed += now_s() - t0;
    }
    cell.dirty_legacy_pps = static_cast<double>(harvested) / elapsed;

    elapsed = 0;
    std::uint64_t copied = 0;
    for (std::size_t s = 0; s < sweeps; ++s) {
      const double t0 = now_s();
      copied += world.precopy_round();
      elapsed += now_s() - t0;
    }
    cell.precopy_legacy_pps = static_cast<double>(copied) / elapsed;
  }

  return cell;
}

const std::vector<Cell>& results() {
  static const std::vector<Cell> cached = [] {
    mem::set_hot_path_counters_enabled(true);
    std::vector<Cell> cells;
    for (std::size_t mib : ram_sizes_mib()) cells.push_back(run_cell(mib));
    return cells;
  }();
  return cached;
}

void BM_MemScaling(benchmark::State& state) {
  const auto idx = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(results());
  // Tiny mode (CSK_BENCH_TINY) runs fewer cells than the registered range.
  if (idx >= results().size()) return;
  const Cell& c = results()[idx];
  state.counters["ram_mib"] = static_cast<double>(c.ram_mib);
  state.counters["ksm_scan_pps"] = c.ksm_new_pps;
  state.counters["dirty_harvest_pps"] = c.dirty_new_pps;
  state.counters["precopy_pps"] = c.precopy_new_pps;
}
BENCHMARK(BM_MemScaling)->DenseRange(0, 4)->Iterations(1);

void print_tables() {
  Table table("Memory hot-path scaling — dense tables vs legacy hash maps");
  table.columns({"RAM (MiB)", "ksm scan (pages/s)", "x", "dirty harvest (pages/s)",
                 "x", "pre-copy (pages/s)", "x"});
  for (const Cell& c : results()) {
    table.row({std::to_string(c.ram_mib), csk::format_fixed(c.ksm_new_pps, 0),
               csk::format_fixed(c.ksm_new_pps / c.ksm_legacy_pps, 1),
               csk::format_fixed(c.dirty_new_pps, 0),
               csk::format_fixed(c.dirty_new_pps / c.dirty_legacy_pps, 1),
               csk::format_fixed(c.precopy_new_pps, 0),
               csk::format_fixed(c.precopy_new_pps / c.precopy_legacy_pps, 1)});
  }
  table.note("x columns: speedup over the pre-overhaul unordered_map + "
             "snapshot/sort + deep-copy implementation, emulated in-bench");
  table.print();

  for (const Cell& c : results()) {
    const std::string p = "ram_mib=" + std::to_string(c.ram_mib) + "/";
    csk::bench::report()
        .add(p + "ksm_scan_pps", c.ksm_new_pps, "pages/s")
        .add(p + "ksm_scan_legacy_pps", c.ksm_legacy_pps, "pages/s")
        .add(p + "ksm_scan_speedup_x", c.ksm_new_pps / c.ksm_legacy_pps)
        .add(p + "dirty_harvest_pps", c.dirty_new_pps, "pages/s")
        .add(p + "dirty_harvest_legacy_pps", c.dirty_legacy_pps, "pages/s")
        .add(p + "dirty_harvest_speedup_x", c.dirty_new_pps / c.dirty_legacy_pps)
        .add(p + "precopy_pps", c.precopy_new_pps, "pages/s")
        .add(p + "precopy_legacy_pps", c.precopy_legacy_pps, "pages/s")
        .add(p + "precopy_speedup_x", c.precopy_new_pps / c.precopy_legacy_pps);
  }
  csk::bench::report().note(
      "wall-clock throughput of simulator data structures (not simulated "
      "time); legacy = per-gfn unordered_maps, snapshot+sort cursor, "
      "frame-keyed volatile stamps, deep-copied page bytes");
}

}  // namespace

int main(int argc, char** argv) {
  return csk::bench::bench_main(argc, argv, print_tables);
}
