// Shared helpers for the benchmark harness.
//
// Every bench binary regenerates one table or figure of the paper: it runs
// the simulated experiment at paper scale, registers the headline numbers
// as google-benchmark entries (Iterations(1) — the experiments are
// deterministic simulations, not microbenchmarks of this process), and then
// prints a paper-vs-measured table so EXPERIMENTS.md can be assembled from
// the raw output.
#pragma once

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "vmm/host.h"
#include "vmm/machine_config.h"

namespace csk::bench {

/// The paper's testbed, scaled 1:1 — Dell T1700, 16 GB RAM, Fedora 22
/// guests with 1 GiB RAM each, ~480 MiB resident after boot. ksmd is tuned
/// up from the kernel defaults so that merge waits stay at the "wait for a
/// while" magnitude the paper uses.
inline vmm::World::HostConfig paper_host_config() {
  vmm::World::HostConfig cfg;
  cfg.name = "host0";
  cfg.memory_gb = 16;
  cfg.boot_touched_mib = 480;
  cfg.ksm.pages_per_scan = 5000;
  cfg.ksm.scan_interval = SimDuration::millis(20);
  return cfg;
}

/// The target VM of the evaluation: 1 GiB RAM, one vCPU, qcow2 disk,
/// user-mode virtio-net with the SSH hostfwd, monitor on telnet 5555.
inline vmm::MachineConfig paper_vm_config(const std::string& name = "guest0") {
  vmm::MachineConfig cfg;
  cfg.name = name;
  cfg.memory_mb = 1024;
  cfg.vcpus = 1;
  cfg.drives.push_back({name + ".qcow2", "qcow2", 20480});
  vmm::NetdevConfig nd;
  nd.hostfwd.push_back({2222, 22});
  cfg.netdevs.push_back(nd);
  cfg.monitor.telnet_port = 5555;
  return cfg;
}

// ----------------------------------------------------------- table output

/// Fixed-width console table, printed after the google-benchmark run.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& columns(std::vector<std::string> headers) {
    headers_ = std::move(headers);
    return *this;
  }
  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }
  Table& note(std::string text) {
    notes_.push_back(std::move(text));
    return *this;
  }

  void print() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
      for (const auto& row : rows_) {
        if (c < row.size()) widths[c] = std::max(widths[c], row[c].size());
      }
    }
    std::printf("\n=== %s ===\n", title_.c_str());
    print_row(headers_, widths);
    std::size_t total = headers_.size() ? headers_.size() * 3 - 1 : 0;
    for (std::size_t w : widths) total += w;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto& row : rows_) print_row(row, widths);
    for (const auto& n : notes_) std::printf("note: %s\n", n.c_str());
    std::printf("\n");
  }

 private:
  static void print_row(const std::vector<std::string>& cells,
                        const std::vector<std::size_t>& widths) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::printf("%-*s%s", static_cast<int>(widths[c]), cells[c].c_str(),
                  c + 1 < cells.size() ? " | " : "");
    }
    std::printf("\n");
  }

  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> notes_;
};

/// "+25.7%" style delta label.
inline std::string pct_delta(double from, double to, int decimals = 1) {
  const double pct = (to - from) / from * 100.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.*f%%", decimals, pct);
  return buf;
}

// ------------------------------------------- machine-readable bench output

/// Accumulates paper-vs-measured pairs during table printing; bench_main
/// serializes them (plus a snapshot of the global metrics registry) to
/// `BENCH_<name>.json` in the working directory, so regressions are visible
/// to tooling instead of only to a human reading the console table.
class BenchReport {
 public:
  static BenchReport& instance() {
    static BenchReport* r = new BenchReport();
    return *r;
  }

  /// One measured value without a published paper counterpart (ablations,
  /// values the paper only shows as unlabeled figure bars).
  BenchReport& add(std::string key, double measured, std::string unit = "") {
    entries_.push_back({std::move(key), measured, std::nan(""), std::move(unit)});
    return *this;
  }

  /// One measured value with the paper's number for the same quantity.
  BenchReport& add_paper(std::string key, double measured, double paper,
                         std::string unit = "") {
    entries_.push_back({std::move(key), measured, paper, std::move(unit)});
    return *this;
  }

  BenchReport& note(std::string text) {
    notes_.push_back(std::move(text));
    return *this;
  }

  obs::JsonValue to_json(const std::string& bench_name) const {
    obs::JsonValue entries = obs::JsonValue::array();
    for (const Entry& e : entries_) {
      obs::JsonValue entry = obs::JsonValue::object()
                                 .set("key", e.key)
                                 .set("measured", e.measured);
      if (std::isnan(e.paper)) {
        entry.set("paper", obs::JsonValue());  // null: no published value
      } else {
        entry.set("paper", e.paper);
        if (e.paper != 0.0) {
          entry.set("delta_pct", (e.measured - e.paper) / e.paper * 100.0);
        }
      }
      if (!e.unit.empty()) entry.set("unit", e.unit);
      entries.push(std::move(entry));
    }
    obs::JsonValue notes = obs::JsonValue::array();
    for (const std::string& n : notes_) notes.push(n);
    return obs::JsonValue::object()
        .set("bench", bench_name)
        .set("schema_version", 1)
        .set("entries", std::move(entries))
        .set("notes", std::move(notes))
        .set("metrics", obs::metrics().snapshot().to_json());
  }

  Status write(const std::string& bench_name) const {
    const std::string path = "BENCH_" + bench_name + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return unavailable("cannot open " + path);
    const std::string body = to_json(bench_name).dump(2) + "\n";
    const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    if (n != body.size()) return unavailable("short write to " + path);
    std::printf("wrote %s (%zu entries)\n", path.c_str(), entries_.size());
    return Status::ok();
  }

 private:
  struct Entry {
    std::string key;
    double measured;
    double paper;  // NaN when the paper publishes no value
    std::string unit;
  };
  std::vector<Entry> entries_;
  std::vector<std::string> notes_;
};

inline BenchReport& report() { return BenchReport::instance(); }

/// "bench_fig4_migration" (or a path ending in it) -> "fig4_migration".
inline std::string bench_name_from_argv0(const char* argv0) {
  std::string name(argv0 != nullptr ? argv0 : "unknown");
  const auto slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  if (name.starts_with("bench_")) name = name.substr(6);
  return name;
}

/// Runs the registered benchmarks, then the provided table printer, then
/// writes the BENCH_<name>.json report.
inline int bench_main(int argc, char** argv, void (*print_tables)()) {
  const std::string bench_name = bench_name_from_argv0(argc > 0 ? argv[0] : nullptr);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  if (print_tables != nullptr) print_tables();
  const Status st = report().write(bench_name);
  if (!st.is_ok()) {
    std::fprintf(stderr, "bench report: %s\n", st.to_string().c_str());
    return 1;
  }
  return 0;
}

}  // namespace csk::bench
