// Shared helpers for the benchmark harness.
//
// Every bench binary regenerates one table or figure of the paper: it runs
// the simulated experiment at paper scale, registers the headline numbers
// as google-benchmark entries (Iterations(1) — the experiments are
// deterministic simulations, not microbenchmarks of this process), and then
// prints a paper-vs-measured table so EXPERIMENTS.md can be assembled from
// the raw output.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.h"
#include "vmm/host.h"
#include "vmm/machine_config.h"

namespace csk::bench {

/// The paper's testbed, scaled 1:1 — Dell T1700, 16 GB RAM, Fedora 22
/// guests with 1 GiB RAM each, ~480 MiB resident after boot. ksmd is tuned
/// up from the kernel defaults so that merge waits stay at the "wait for a
/// while" magnitude the paper uses.
inline vmm::World::HostConfig paper_host_config() {
  vmm::World::HostConfig cfg;
  cfg.name = "host0";
  cfg.memory_gb = 16;
  cfg.boot_touched_mib = 480;
  cfg.ksm.pages_per_scan = 5000;
  cfg.ksm.scan_interval = SimDuration::millis(20);
  return cfg;
}

/// The target VM of the evaluation: 1 GiB RAM, one vCPU, qcow2 disk,
/// user-mode virtio-net with the SSH hostfwd, monitor on telnet 5555.
inline vmm::MachineConfig paper_vm_config(const std::string& name = "guest0") {
  vmm::MachineConfig cfg;
  cfg.name = name;
  cfg.memory_mb = 1024;
  cfg.vcpus = 1;
  cfg.drives.push_back({name + ".qcow2", "qcow2", 20480});
  vmm::NetdevConfig nd;
  nd.hostfwd.push_back({2222, 22});
  cfg.netdevs.push_back(nd);
  cfg.monitor.telnet_port = 5555;
  return cfg;
}

// ----------------------------------------------------------- table output

/// Fixed-width console table, printed after the google-benchmark run.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& columns(std::vector<std::string> headers) {
    headers_ = std::move(headers);
    return *this;
  }
  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }
  Table& note(std::string text) {
    notes_.push_back(std::move(text));
    return *this;
  }

  void print() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
      for (const auto& row : rows_) {
        if (c < row.size()) widths[c] = std::max(widths[c], row[c].size());
      }
    }
    std::printf("\n=== %s ===\n", title_.c_str());
    print_row(headers_, widths);
    std::size_t total = headers_.size() ? headers_.size() * 3 - 1 : 0;
    for (std::size_t w : widths) total += w;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto& row : rows_) print_row(row, widths);
    for (const auto& n : notes_) std::printf("note: %s\n", n.c_str());
    std::printf("\n");
  }

 private:
  static void print_row(const std::vector<std::string>& cells,
                        const std::vector<std::size_t>& widths) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::printf("%-*s%s", static_cast<int>(widths[c]), cells[c].c_str(),
                  c + 1 < cells.size() ? " | " : "");
    }
    std::printf("\n");
  }

  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> notes_;
};

/// "+25.7%" style delta label.
inline std::string pct_delta(double from, double to, int decimals = 1) {
  const double pct = (to - from) / from * 100.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.*f%%", decimals, pct);
  return buf;
}

/// Runs the registered benchmarks, then the provided table printer.
inline int bench_main(int argc, char** argv, void (*print_tables)()) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  if (print_tables != nullptr) print_tables();
  return 0;
}

}  // namespace csk::bench
