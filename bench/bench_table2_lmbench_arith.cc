// Regenerates Table II: lmbench arithmetic-operation latencies (ns) at
// L0 / L1 / L2 — virtualization (even nested) leaves register arithmetic
// untouched.
#include "bench_util.h"
#include "workloads/lmbench.h"

namespace {

using csk::bench::Table;
using csk::hv::ExecEnv;
using csk::hv::Layer;
using csk::hv::TimingModel;
using csk::workloads::LmbenchSuite;

struct TableIIResults {
  std::vector<csk::workloads::LmbenchArithResult> rows[3];
};

const TableIIResults& results() {
  static const TableIIResults cached = [] {
    TableIIResults r;
    const TimingModel model;
    const LmbenchSuite suite;
    for (int layer = 0; layer < 3; ++layer) {
      r.rows[layer] =
          suite.run_arith(ExecEnv{static_cast<Layer>(layer), &model, false});
    }
    return r;
  }();
  return cached;
}

void BM_TableII_Arith(benchmark::State& state) {
  const int layer = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(results());
  }
  for (const auto& row : results().rows[layer]) {
    state.counters[row.op + "_ns"] = row.ns;
  }
  state.SetLabel(csk::hv::layer_name(static_cast<Layer>(layer)));
}
BENCHMARK(BM_TableII_Arith)->DenseRange(0, 2)->Iterations(1);

void print_tables() {
  const TableIIResults& r = results();
  Table table("Table II — lmbench arithmetic operations, times in ns");
  std::vector<std::string> headers{"Config"};
  for (const auto& row : r.rows[0]) headers.push_back(row.op);
  table.columns(headers);
  for (int layer = 0; layer < 3; ++layer) {
    std::vector<std::string> cells{
        csk::hv::layer_name(static_cast<Layer>(layer))};
    for (const auto& row : r.rows[layer]) {
      cells.push_back(csk::format_fixed(row.ns, 2));
    }
    table.row(cells);
  }
  table.note("paper L2 row: 0.26 / 0.13 / 6.14 / 6.59 / 0.78 / 1.30 / 3.43 "
             "/ 0.78 / 1.30 / 5.23 — negligible effect at every layer");
  table.print();

  const double paper_l2_ns[] = {0.26, 0.13, 6.14, 6.59, 0.78,
                                1.30, 3.43, 0.78, 1.30, 5.23};
  for (std::size_t i = 0; i < r.rows[2].size(); ++i) {
    const auto& row = r.rows[2][i];
    if (i < std::size(paper_l2_ns)) {
      csk::bench::report().add_paper("L2/" + std::string(row.op) + "_ns",
                                     row.ns, paper_l2_ns[i], "ns");
    } else {
      csk::bench::report().add("L2/" + std::string(row.op) + "_ns", row.ns,
                               "ns");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  return csk::bench::bench_main(argc, argv, print_tables);
}
