// Adaptive attacker vs the detector stack: what feedback buys the rootkit.
//
// The paper's attacker is static — its evasions (custom VMCS revision id,
// hidden L1 processes, TSC scaling) are chosen at install time and never
// change. This bench sweeps `campaign::DetectionCampaign` over the
// src/attacker policy grid on the same population seed:
//
//   static        — the paper's attacker (seed-drawn evasions, kStatic)
//   tsc           — kProbeTriggeredTsc: watches the L2 probe's exit bursts
//                   and deflates the victim's TSC per-op
//   mirror        — kReactiveMirror: watches victim File-A writes and
//                   sync-mirrors them into the L1 facade
//   mirror+rerand — the countermeasure: the dedup detector re-randomizes
//                   File-A contents every run (fresh gfns strand stale
//                   watch sets)
//
// Each cell re-runs the full ROC sweep and FPR-budget calibration, so the
// numbers are operating-point degradation — the operator's view of an
// attacker that adapts — not just score drift.
//
// Adaptation witnesses (CSK_CHECKed, not just reported):
//   * mirror degrades the dedup detector: lower AUC and lower calibrated
//     TPR than the static attacker;
//   * re-randomized File-A claws detection back: mirror+rerand TPR above
//     mirror TPR (stranded watch sets re-merge and get caught);
//   * probe-triggered TSC blinds the guest probe: lower probe AUC than
//     static, while the dedup detector is untouched by it;
//   * the static cell never pays attacker overhead: zero eager unshares.
//
// CSK_BENCH_TINY=1 shrinks the population for the CTest smoke run.
#include <cstdlib>
#include <string>
#include <vector>

#include "attacker/policy.h"
#include "bench_util.h"
#include "campaign/campaign.h"
#include "common/status.h"

namespace {

using csk::bench::Table;
using namespace csk;

bool tiny() { return std::getenv("CSK_BENCH_TINY") != nullptr; }
std::size_t population() { return tiny() ? 16 : 48; }
constexpr std::uint64_t kRootSeed = 0xADAB7ACCE55ull;
constexpr int kWorkers = 8;
constexpr double kTargetFpr = 0.01;

struct PolicyCell {
  std::string name;
  attacker::AttackerPolicyKind kind;
  bool rerandomize_file_a;
};

const std::vector<PolicyCell>& cells() {
  static const std::vector<PolicyCell> kCells = {
      {"static", attacker::AttackerPolicyKind::kStatic, false},
      {"tsc", attacker::AttackerPolicyKind::kProbeTriggeredTsc, false},
      {"mirror", attacker::AttackerPolicyKind::kReactiveMirror, false},
      {"mirror+rerand", attacker::AttackerPolicyKind::kReactiveMirror, true},
  };
  return kCells;
}

campaign::CampaignConfig cell_config(const PolicyCell& cell) {
  campaign::CampaignConfig cfg;
  cfg.population = population();
  cfg.workers = kWorkers;
  cfg.root_seed = kRootSeed;
  cfg.target_fpr = kTargetFpr;
  // Small fast shards (the campaign_test shape): the grid runs four full
  // campaigns, so each shard stays cheap.
  cfg.scenario.boot_touched_mib = 4;
  cfg.scenario.guest_memory_mb = 64;
  cfg.scenario.file_pages_min = 8;
  cfg.scenario.file_pages_max = 16;
  cfg.scenario.merge_wait_min_s = 1.0;
  cfg.scenario.merge_wait_max_s = 3.0;
  cfg.attacker.kind = cell.kind;
  cfg.scenario.rerandomize_file_a = cell.rerandomize_file_a;
  return cfg;
}

struct CellResult {
  PolicyCell cell;
  campaign::CampaignReport report;
  std::uint64_t unshared_pages = 0;  // mirror's eager COW splits
};

const std::vector<CellResult>& results() {
  static const std::vector<CellResult>* cached = [] {
    auto* rs = new std::vector<CellResult>();
    for (const PolicyCell& cell : cells()) {
      CellResult r;
      r.cell = cell;
      r.report = campaign::DetectionCampaign(cell_config(cell)).run();
      r.unshared_pages =
          r.report.fleet.merged.counter_or("mem.ksm.unshared_pages");
      rs->push_back(std::move(r));
    }

    auto eval = [&](const std::string& cell_name,
                    const char* detector) -> const campaign::DetectorEvaluation& {
      for (const CellResult& r : *rs) {
        if (r.cell.name == cell_name) return r.report.detectors.at(detector);
      }
      CSK_CHECK_MSG(false, "unknown cell " + cell_name);
      std::abort();
    };

    // The adaptation witnesses. Every infected shard arms the same policy,
    // and every cell shares the population seed, so these are apples-to-
    // apples: the only difference between cells is the attacker's feedback
    // loop (and, in mirror+rerand, the detector's countermeasure).
    const auto& dedup_static = eval("static", "dedup");
    const auto& dedup_mirror = eval("mirror", "dedup");
    const auto& dedup_rerand = eval("mirror+rerand", "dedup");
    CSK_CHECK_MSG(dedup_mirror.roc.auc < dedup_static.roc.auc,
                  "mirror must degrade the dedup detector's AUC");
    CSK_CHECK_MSG(dedup_mirror.operating.tpr < dedup_static.operating.tpr,
                  "mirror must degrade the dedup calibrated operating TPR");
    CSK_CHECK_MSG(dedup_rerand.operating.tpr > dedup_mirror.operating.tpr,
                  "re-randomized File-A must recover part of the dedup TPR");
    const auto& probe_static = eval("static", "probe");
    const auto& probe_tsc = eval("tsc", "probe");
    CSK_CHECK_MSG(probe_tsc.roc.auc < probe_static.roc.auc,
                  "probe-triggered TSC must degrade the guest probe's AUC");
    const auto& dedup_tsc = eval("tsc", "dedup");
    CSK_CHECK_MSG(dedup_tsc.roc.auc == dedup_static.roc.auc,
                  "TSC deflation must not touch the dedup detector");
    CSK_CHECK_MSG(rs->front().unshared_pages == 0,
                  "the static attacker must never unshare pages eagerly");
    return rs;
  }();
  return *cached;
}

void BM_Adaptive_Attacker(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(results());
  }
  const auto& rs = results();
  state.counters["population"] = static_cast<double>(population());
  state.counters["cells"] = static_cast<double>(rs.size());
  for (const CellResult& r : rs) {
    if (r.cell.name == "static") {
      state.counters["static_dedup_auc"] =
          r.report.detectors.at("dedup").roc.auc;
    } else if (r.cell.name == "mirror") {
      state.counters["mirror_dedup_auc"] =
          r.report.detectors.at("dedup").roc.auc;
    }
  }
  state.SetLabel(tiny() ? "tiny policy grid" : "48-guest policy grid");
}
BENCHMARK(BM_Adaptive_Attacker)->Iterations(1);

void print_tables() {
  const auto& rs = results();
  const auto& static_report = rs.front().report;

  Table table("Adaptive attacker — " + std::to_string(population()) +
              " guests per cell, FPR budget " +
              format_fixed(kTargetFpr * 100, 1) + " %");
  table.columns({"policy", "dedup AUC", "dedup TPR", "probe AUC", "probe TPR",
                 "inconclusive", "unshared"});
  for (const CellResult& r : rs) {
    const auto& dedup = r.report.detectors.at("dedup");
    const auto& probe = r.report.detectors.at("probe");
    table.row({r.cell.name, format_fixed(dedup.roc.auc, 3),
               format_fixed(dedup.operating.tpr, 3),
               format_fixed(probe.roc.auc, 3),
               format_fixed(probe.operating.tpr, 3),
               std::to_string(r.report.inconclusive_runs),
               std::to_string(r.unshared_pages)});
  }
  table.note("same population seed per cell: the delta IS the feedback loop");
  table.note("mirror keeps the L1 facade byte-fresh, so the stale-copy "
             "re-merge the dedup protocol keys on never happens");
  table.note("mirror+rerand: fresh File-A gfns strand ~half the watch sets "
             "(mirror_rescan_fraction) — stranded shards are re-detected");
  table.print();

  auto& out = csk::bench::report();
  out.add("attacker/population", static_cast<double>(population()))
      .add("attacker/target_fpr", kTargetFpr);
  const auto& base_dedup = static_report.detectors.at("dedup");
  const auto& base_probe = static_report.detectors.at("probe");
  for (const CellResult& r : rs) {
    const std::string prefix = "attacker/" + r.cell.name;
    for (const auto& [name, eval] : r.report.detectors) {
      const std::string dp = prefix + "/" + name;
      out.add(dp + "/auc", eval.roc.auc)
          .add(dp + "/operating/threshold", eval.operating.threshold)
          .add(dp + "/operating/tpr", eval.operating.tpr)
          .add(dp + "/operating/fpr", eval.operating.fpr);
    }
    // The headline numbers: degradation relative to the static attacker.
    out.add(prefix + "/dedup_auc_delta",
            r.report.detectors.at("dedup").roc.auc - base_dedup.roc.auc)
        .add(prefix + "/dedup_tpr_delta",
             r.report.detectors.at("dedup").operating.tpr -
                 base_dedup.operating.tpr)
        .add(prefix + "/probe_auc_delta",
             r.report.detectors.at("probe").roc.auc - base_probe.roc.auc)
        .add(prefix + "/inconclusive_runs",
             static_cast<double>(r.report.inconclusive_runs))
        .add(prefix + "/unshared_pages",
             static_cast<double>(r.unshared_pages))
        .add(prefix + "/ensemble_auc", r.report.ensemble.roc.auc);
  }
  out.note("policy grid: static (paper attacker), tsc (probe-triggered "
           "TSC deflation), mirror (reactive File-A sync-mirroring), "
           "mirror+rerand (detector re-randomizes File-A contents)")
      .note("adaptation witnesses CSK_CHECKed: mirror lowers dedup "
            "AUC+TPR; rerandomized File-A recovers TPR; tsc lowers probe "
            "AUC without touching dedup; static unshares zero pages")
      .note("no published counterpart: the paper's attacker never adapts "
            "(§VI-E evasions are chosen at install time)")
      .note(tiny() ? "CSK_BENCH_TINY=1: smoke-sized population"
                   : "full population");
}

}  // namespace

int main(int argc, char** argv) {
  return csk::bench::bench_main(argc, argv, print_tables);
}
