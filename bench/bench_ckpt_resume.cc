// Checkpoint/resume characterization: what crash-consistency costs and what
// resume saves.
//
// One 24-cell sweep (small filebench and detection cells) runs three ways:
//
//   * baseline — no checkpointing; its deterministic bytes are the golden
//     reference and its wall-clock the overhead denominator;
//   * checkpointed — a durable checkpoint every 4 shard completions plus
//     the final one; the wall-clock delta over baseline is the price of
//     crash-consistency;
//   * resumed — once from an early intermediate checkpoint (most shards
//     re-run) and once from the final checkpoint (everything restored, no
//     simulation at all).
//
// Every variant must reproduce the golden deterministic_json() bytes —
// CSK_CHECKed here, not just asserted in tests — so the bench doubles as an
// end-to-end witness that checkpointing is invisible to simulated results.
#include <unistd.h>

#include <filesystem>
#include <string>

#include "bench_util.h"
#include "ckpt/ckpt.h"
#include "detect/dedup_detector.h"
#include "driver/vm_runner.h"
#include "fleet/fleet.h"
#include "workloads/filebench.h"

namespace {

namespace fs = std::filesystem;
using csk::bench::Table;
using namespace csk;

constexpr std::size_t kShards = 24;
constexpr std::size_t kEveryShards = 4;
constexpr int kWorkers = 4;
constexpr std::uint64_t kRootSeed = 0xCC4997ull;

vmm::World::HostConfig cell_host_config() {
  vmm::World::HostConfig cfg;
  cfg.name = "host0";
  cfg.boot_touched_mib = 8;
  cfg.ksm.pages_per_scan = 4000;
  cfg.ksm.scan_interval = SimDuration::millis(10);
  return cfg;
}

vmm::MachineConfig cell_vm_config(const std::string& name) {
  vmm::MachineConfig cfg;
  cfg.name = name;
  cfg.memory_mb = 64;
  cfg.vcpus = 1;
  cfg.drives.push_back({name + ".qcow2", "qcow2", 20480});
  cfg.netdevs.emplace_back();
  return cfg;
}

/// Even shards: a filebench run plus a ksmd settle window.
fleet::ShardOutcome workload_cell(const fleet::ShardContext& ctx) {
  fleet::ShardOutcome out;
  Rng rng(ctx.seed);
  vmm::World world(derive_seed(ctx.seed, 1));
  vmm::Host* host = world.make_host(cell_host_config());
  vmm::VirtualMachine* vm = host->launch_vm(cell_vm_config("fb")).value();
  workloads::FilebenchWorkload::Params params;
  params.iterations = 1000 + static_cast<int>(rng.uniform(1000));
  const workloads::FilebenchWorkload fb(params);
  const SimDuration elapsed = driver::run_workload(*vm, fb);
  world.simulator().run_for(SimDuration::seconds(1));
  out.values["fb/elapsed_s"] = elapsed.seconds_f();
  out.values["fb/events"] = static_cast<double>(world.simulator().dispatched());
  return out;
}

/// Odd shards: the dedup detection protocol against a clean guest.
fleet::ShardOutcome detection_cell(const fleet::ShardContext& ctx) {
  fleet::ShardOutcome out;
  Rng rng(ctx.seed);
  vmm::World world(derive_seed(ctx.seed, 1));
  vmm::Host* host = world.make_host(cell_host_config());
  vmm::VirtualMachine* vm =
      host->launch_vm(cell_vm_config("victim"), /*boot_touched_mib=*/16)
          .value();
  detect::DedupDetectorConfig cfg;
  cfg.file_pages = 12 + rng.uniform(12);
  cfg.merge_wait = SimDuration::seconds(5);
  detect::DedupDetector detector(host, cfg);
  if (Status st = detector.seed_guest(vm->os()); !st.is_ok()) {
    out.status = st;
    return out;
  }
  auto report = detector.run(vm->os());
  if (!report.is_ok()) {
    out.status = report.status();
    return out;
  }
  out.values["det/clean"] =
      report->verdict == detect::DedupVerdict::kNoNestedVm ? 1.0 : 0.0;
  out.values["det/protocol_s"] = world.simulator().now().seconds_f();
  return out;
}

fleet::FleetRunner make_sweep(const std::string& ckpt_dir) {
  fleet::FleetConfig cfg;
  cfg.workers = kWorkers;
  cfg.root_seed = kRootSeed;
  cfg.checkpoint.directory = ckpt_dir;
  cfg.checkpoint.every_shards = kEveryShards;
  fleet::FleetRunner fleet(cfg);
  for (std::size_t i = 0; i < kShards; ++i) {
    if (i % 2 == 0) {
      fleet.add("fb-" + std::to_string(i), workload_cell);
    } else {
      fleet.add("det-" + std::to_string(i), detection_cell);
    }
  }
  return fleet;
}

struct CkptResults {
  std::string dir;
  fleet::FleetReport baseline;     // no checkpointing
  fleet::FleetReport checkpointed; // every kEveryShards + final
  fleet::FleetReport resumed_mid;  // from checkpoint sequence 1
  fleet::FleetReport resumed_full; // from the final checkpoint
};

CkptResults& results() {
  static CkptResults* cached = [] {
    auto* r = new CkptResults();
    r->dir = (fs::temp_directory_path() /
              ("csk_bench_ckpt_" + std::to_string(::getpid())))
                 .string();
    fs::remove_all(r->dir);
    r->baseline = make_sweep("").run();
    r->checkpointed = make_sweep(r->dir).run();
    const std::string golden = r->baseline.deterministic_json();

    auto mid = make_sweep(r->dir).resume_from(
        r->dir + "/" + ckpt::CheckpointStore::checkpoint_filename(1));
    CSK_CHECK_MSG(mid.is_ok(), mid.status().to_string());
    r->resumed_mid = std::move(mid).take();

    auto full = make_sweep(r->dir).resume_from();
    CSK_CHECK_MSG(full.is_ok(), full.status().to_string());
    r->resumed_full = std::move(full).take();

    // The whole point: checkpointing and resuming are invisible to the
    // simulated results, byte for byte.
    CSK_CHECK(r->checkpointed.deterministic_json() == golden);
    CSK_CHECK(r->resumed_mid.deterministic_json() == golden);
    CSK_CHECK(r->resumed_full.deterministic_json() == golden);
    CSK_CHECK(r->resumed_full.resumed_shards == kShards);
    fs::remove_all(r->dir);
    return r;
  }();
  return *cached;
}

double overhead_pct() {
  const auto& r = results();
  return (static_cast<double>(r.checkpointed.wall_ns) -
          static_cast<double>(r.baseline.wall_ns)) /
         static_cast<double>(r.baseline.wall_ns) * 100.0;
}

void BM_Ckpt_Resume(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(results());
  }
  const auto& r = results();
  state.counters["shards"] = static_cast<double>(kShards);
  state.counters["checkpoints"] =
      static_cast<double>(r.checkpointed.checkpoints_written);
  state.counters["overhead_pct"] = overhead_pct();
  state.counters["mid_restored"] =
      static_cast<double>(r.resumed_mid.resumed_shards);
  state.counters["full_restored"] =
      static_cast<double>(r.resumed_full.resumed_shards);
  state.SetLabel("24-cell sweep, checkpoint every 4 shards");
}
BENCHMARK(BM_Ckpt_Resume)->Iterations(1);

void print_tables() {
  const auto& r = results();

  Table table("Checkpoint/resume — 24 mixed cells");
  table.columns({"variant", "wall s", "ckpt writes", "restored", "re-run"});
  table.row({"baseline", format_fixed(r.baseline.wall_ns / 1e9, 3), "0", "0",
             std::to_string(kShards)});
  table.row({"checkpointed", format_fixed(r.checkpointed.wall_ns / 1e9, 3),
             std::to_string(r.checkpointed.checkpoints_written), "0",
             std::to_string(kShards)});
  table.row({"resume mid", format_fixed(r.resumed_mid.wall_ns / 1e9, 3),
             std::to_string(r.resumed_mid.checkpoints_written),
             std::to_string(r.resumed_mid.resumed_shards),
             std::to_string(kShards - r.resumed_mid.resumed_shards)});
  table.row({"resume full", format_fixed(r.resumed_full.wall_ns / 1e9, 3),
             std::to_string(r.resumed_full.checkpoints_written),
             std::to_string(r.resumed_full.resumed_shards), "0"});
  table.note("all four variants produced byte-identical deterministic "
             "reports (CSK_CHECKed)");
  table.note("checkpoint overhead " + format_fixed(overhead_pct(), 1) +
             "% of baseline wall-clock");
  table.print();

  auto& rep = csk::bench::report();
  rep.add("ckpt/shards", static_cast<double>(kShards))
      .add("ckpt/every_shards", static_cast<double>(kEveryShards))
      .add("ckpt/checkpoints_written",
           static_cast<double>(r.checkpointed.checkpoints_written))
      .add("ckpt/write_failures",
           static_cast<double>(r.checkpointed.checkpoint_write_failures))
      .add("ckpt/baseline_wall_s", r.baseline.wall_ns / 1e9, "s")
      .add("ckpt/checkpointed_wall_s", r.checkpointed.wall_ns / 1e9, "s")
      .add("ckpt/ckpt_write_wall_ms", r.checkpointed.checkpoint_wall_ns / 1e6,
           "ms")
      .add("ckpt/overhead_pct", overhead_pct(), "%")
      .add("resume/mid_restored_shards",
           static_cast<double>(r.resumed_mid.resumed_shards))
      .add("resume/mid_rerun_shards",
           static_cast<double>(kShards - r.resumed_mid.resumed_shards))
      .add("resume/mid_wall_s", r.resumed_mid.wall_ns / 1e9, "s")
      .add("resume/full_restored_shards",
           static_cast<double>(r.resumed_full.resumed_shards))
      .add("resume/full_wall_s", r.resumed_full.wall_ns / 1e9, "s")
      .add("resume/byte_identical", 1.0);
  rep.note("no published counterpart: this characterizes the ckpt subsystem, "
           "not a paper figure")
      .note("byte_identical == 1: baseline, checkpointed and both resumed "
            "variants emitted the same deterministic_json bytes")
      .note("overhead_pct is host wall-clock only; simulated results are "
            "unaffected by construction");
}

}  // namespace

int main(int argc, char** argv) {
  return csk::bench::bench_main(argc, argv, print_tables);
}
