// Regenerates Figure 4: live-migration end-to-end time for {L0-L0, L0-L1}
// destinations under {idle, Linux kernel compile, Filebench} guest
// workloads.
//
// L0-L0 is the ordinary single-host migration; L0-L1 is CloudSkulk's
// migration *into a nested VM inside the rootkit VM*, routed through the
// HOST:AAAA -> ROOTKIT:BBBB relay exactly as §IV-A describes. The paper's
// L0-L1 figures: idle ~26 s, Filebench ~29 s, kernel compile ~820 s.
#include <memory>

#include "bench_util.h"
#include "net/port_forward.h"
#include "vmm/migration.h"
#include "workloads/filebench.h"
#include "workloads/kernel_compile.h"
#include "workloads/workload.h"

namespace {

using csk::bench::Table;
using namespace csk;
using namespace csk::vmm;

enum class DestKind { kL0L0, kL0L1 };

struct Cell {
  MigrationStats stats;
};

std::unique_ptr<workloads::Workload> make_workload(const std::string& name) {
  if (name == "idle") return std::make_unique<workloads::IdleWorkload>();
  if (name == "kernel-compile") {
    return std::make_unique<workloads::KernelCompileWorkload>();
  }
  return std::make_unique<workloads::FilebenchWorkload>();
}

Cell run_cell(DestKind kind, const std::string& workload_name,
              net::DeliveryMode mode = net::DeliveryMode::kPerPacket) {
  World world;
  world.network().set_delivery_mode(mode);
  auto host_cfg = bench::paper_host_config();
  host_cfg.ksm_enabled = false;  // isolate Fig 4 from dedup side effects
  Host* host = world.make_host(host_cfg);

  VirtualMachine* source = host->launch_vm(bench::paper_vm_config()).value();
  auto workload = make_workload(workload_name);
  source->set_dirty_page_source(
      [wl = workload.get()](SimDuration elapsed) {
        return wl->dirty_rate(elapsed);
      });

  net::NetAddr target{host->node_name(), Port(4444)};
  std::unique_ptr<net::PortForwarder> relay;
  VirtualMachine* rootkit = nullptr;

  if (kind == DestKind::kL0L0) {
    auto dest_cfg = bench::paper_vm_config("guest0-dst");
    dest_cfg.monitor.telnet_port = 0;
    dest_cfg.netdevs[0].hostfwd.clear();
    dest_cfg.incoming_port = 4444;
    (void)host->launch_vm(dest_cfg).value();
  } else {
    auto rk_cfg = bench::paper_vm_config("guestX");
    rk_cfg.cpu_host_passthrough = true;
    rk_cfg.monitor.telnet_port = 5556;
    rk_cfg.netdevs[0].hostfwd.clear();
    rootkit = host->launch_vm(rk_cfg, /*boot_touched_mib=*/96).value();
    CSK_CHECK(rootkit->enable_nested_hypervisor().is_ok());
    auto nested_cfg = bench::paper_vm_config("guest0");
    nested_cfg.monitor.telnet_port = 0;
    nested_cfg.netdevs[0].hostfwd = {{22, 22}};
    nested_cfg.incoming_port = 4445;  // ROOTKIT PORT BBBB
    CSK_CHECK(rootkit->launch_nested_vm(nested_cfg).is_ok());
    relay = std::make_unique<net::PortForwarder>(
        &world.network(), target,
        net::NetAddr{rootkit->node_name(), Port(4445)}, "migration-relay");
    CSK_CHECK(relay->start().is_ok());
  }

  MigrationConfig mig_cfg;  // QEMU defaults: 32 MiB/s, 300 ms downtime
  MigrationJob job(&world, source, target, mig_cfg);
  job.start();
  const SimTime deadline = world.simulator().now() + SimDuration::seconds(3600);
  while (!job.done() && world.simulator().now() < deadline) {
    if (!world.simulator().step()) break;
  }
  CSK_CHECK_MSG(job.done() && job.stats().succeeded,
                "fig4 cell failed: " + job.stats().error);
  return Cell{job.stats()};
}

struct Fig4Results {
  // [workload][dest kind]
  Cell cells[3][2];
};

const char* kWorkloads[3] = {"idle", "kernel-compile", "filebench"};

const Fig4Results& results() {
  static const Fig4Results cached = [] {
    Fig4Results r;
    for (int w = 0; w < 3; ++w) {
      r.cells[w][0] = run_cell(DestKind::kL0L0, kWorkloads[w]);
      r.cells[w][1] = run_cell(DestKind::kL0L1, kWorkloads[w]);
    }
    // Sanity cross-check (not published): the relayed L0-L1 idle cell run
    // under burst-batched delivery must reproduce the per-packet figures
    // exactly — migration timing is gated by the bandwidth token bucket,
    // never by how the fabric coalesces its delivery events.
    const Cell burst = run_cell(DestKind::kL0L1, kWorkloads[0],
                                net::DeliveryMode::kBurst);
    const MigrationStats& a = r.cells[0][1].stats;
    const MigrationStats& b = burst.stats;
    CSK_CHECK_MSG(a.total_time == b.total_time &&
                      a.downtime == b.downtime && a.rounds == b.rounds &&
                      a.pages_transferred == b.pages_transferred &&
                      a.wire_bytes == b.wire_bytes,
                  "fig4 burst-delivery cross-check diverged from "
                  "per-packet delivery");
    return r;
  }();
  return cached;
}

void BM_Fig4_Migration(benchmark::State& state) {
  const int w = static_cast<int>(state.range(0));
  const int kind = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(results());
  }
  const MigrationStats& s = results().cells[w][kind].stats;
  state.counters["end_to_end_s_sim"] = s.total_time.seconds_f();
  state.counters["downtime_ms_sim"] = s.downtime.millis_f();
  state.counters["rounds"] = s.rounds;
  state.SetLabel(std::string(kWorkloads[w]) +
                 (kind == 0 ? "/L0-L0" : "/L0-L1"));
}
BENCHMARK(BM_Fig4_Migration)
    ->ArgsProduct({{0, 1, 2}, {0, 1}})
    ->Iterations(1);

void print_tables() {
  const Fig4Results& r = results();
  Table table("Figure 4 — live migration end-to-end timing vs workloads");
  table.columns({"Workload", "L0-L0 (s)", "L0-L1 (s)", "increase",
                 "L0-L1 downtime", "L0-L1 rounds", "paper L0-L1"});
  const char* paper[3] = {"~26 s", "~820 s", "~29 s"};
  for (int w = 0; w < 3; ++w) {
    const MigrationStats& a = r.cells[w][0].stats;
    const MigrationStats& b = r.cells[w][1].stats;
    table.row({kWorkloads[w], csk::format_fixed(a.total_time.seconds_f(), 1),
               csk::format_fixed(b.total_time.seconds_f(), 1),
               csk::bench::pct_delta(a.total_time.seconds_f(),
                                     b.total_time.seconds_f()),
               b.downtime.to_string(), std::to_string(b.rounds), paper[w]});
  }
  table.note("L0-L1 = CloudSkulk installation migration (nested "
             "destination, AAAA->BBBB relay); end-to-end time ~= rootkit "
             "installation time");
  table.note("paper does not print L0-L0 values (figure labels only); "
             "modeled L0-L0 rides the 32 MiB/s throttle while L0-L1 is "
             "gated by the nested receive path (~20 MiB/s)");
  table.print();

  const double paper_l0l1_s[3] = {26.0, 820.0, 29.0};
  for (int w = 0; w < 3; ++w) {
    const MigrationStats& a = r.cells[w][0].stats;
    const MigrationStats& b = r.cells[w][1].stats;
    const std::string wl = kWorkloads[w];
    csk::bench::report()
        .add(wl + "/L0-L0/total_s", a.total_time.seconds_f(), "s")
        .add_paper(wl + "/L0-L1/total_s", b.total_time.seconds_f(),
                   paper_l0l1_s[w], "s")
        .add(wl + "/L0-L1/downtime_ms", b.downtime.millis_f(), "ms")
        .add(wl + "/L0-L1/rounds", static_cast<double>(b.rounds));
  }
  csk::bench::report().note(
      "paper L0-L1 values read off Fig 4 bars (~26 / ~820 / ~29 s)");
}

}  // namespace

int main(int argc, char** argv) {
  return csk::bench::bench_main(argc, argv, print_tables);
}
