// Ablation A5 — migrate_set_speed sweep.
//
// Fig 4's absolute numbers hinge on QEMU 2.9's default 32 MiB/s throttle.
// Sweeping the cap shows the two regimes: L0-L0 scales with the cap, while
// the CloudSkulk L0-L1 migration plateaus at the nested destination's
// receive capacity (~20 MiB/s) — raising the cap cannot speed the attack.
#include <memory>

#include "bench_util.h"
#include "net/port_forward.h"
#include "vmm/migration.h"

namespace {

using csk::bench::Table;
using namespace csk;
using namespace csk::vmm;

constexpr double kMiB = 1024.0 * 1024.0;
constexpr double kCaps[] = {8 * kMiB, 16 * kMiB, 32 * kMiB, 64 * kMiB,
                            128 * kMiB, 1024 * kMiB};

double run(bool nested_dest, double cap) {
  World world;
  auto host_cfg = bench::paper_host_config();
  host_cfg.ksm_enabled = false;
  host_cfg.boot_touched_mib = 128;  // reduced transfer volume for the sweep
  Host* host = world.make_host(host_cfg);
  auto src_cfg = bench::paper_vm_config();
  src_cfg.memory_mb = 256;
  VirtualMachine* source = host->launch_vm(src_cfg).value();

  net::NetAddr target{host->node_name(), Port(4444)};
  std::unique_ptr<net::PortForwarder> relay;
  if (!nested_dest) {
    auto dst = src_cfg;
    dst.name = "dst";
    dst.monitor.telnet_port = 0;
    dst.netdevs[0].hostfwd.clear();
    dst.incoming_port = 4444;
    (void)host->launch_vm(dst).value();
  } else {
    auto rk = src_cfg;
    rk.name = "guestX";
    rk.cpu_host_passthrough = true;
    rk.monitor.telnet_port = 5556;
    rk.netdevs[0].hostfwd.clear();
    VirtualMachine* rootkit = host->launch_vm(rk, 32).value();
    CSK_CHECK(rootkit->enable_nested_hypervisor().is_ok());
    auto nested = src_cfg;
    nested.monitor.telnet_port = 0;
    nested.netdevs[0].hostfwd = {{22, 22}};
    nested.incoming_port = 4445;
    CSK_CHECK(rootkit->launch_nested_vm(nested).is_ok());
    relay = std::make_unique<net::PortForwarder>(
        &world.network(), target,
        net::NetAddr{rootkit->node_name(), Port(4445)});
    CSK_CHECK(relay->start().is_ok());
  }

  MigrationConfig cfg;
  cfg.bandwidth_limit_bytes_per_sec = cap;
  MigrationJob job(&world, source, target, cfg);
  job.start();
  while (!job.done()) {
    if (!world.simulator().step()) break;
    if (world.simulator().now() > SimTime(SimDuration::seconds(1200).ns())) break;
  }
  CSK_CHECK_MSG(job.done() && job.stats().succeeded, job.stats().error);
  return job.stats().total_time.seconds_f();
}

struct Results {
  double l0l0[std::size(kCaps)];
  double l0l1[std::size(kCaps)];
};

const Results& results() {
  static const Results cached = [] {
    Results r;
    for (std::size_t i = 0; i < std::size(kCaps); ++i) {
      r.l0l0[i] = run(false, kCaps[i]);
      r.l0l1[i] = run(true, kCaps[i]);
    }
    return r;
  }();
  return cached;
}

void BM_MigrateBandwidth(benchmark::State& state) {
  const auto idx = static_cast<std::size_t>(state.range(0));
  const bool nested = state.range(1) == 1;
  for (auto _ : state) benchmark::DoNotOptimize(results());
  state.counters["cap_MiBps"] = kCaps[idx] / kMiB;
  state.counters["e2e_s_sim"] =
      nested ? results().l0l1[idx] : results().l0l0[idx];
  state.SetLabel(nested ? "L0-L1" : "L0-L0");
}
BENCHMARK(BM_MigrateBandwidth)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5}, {0, 1}})
    ->Iterations(1);

void print_tables() {
  const Results& r = results();
  Table table("Ablation A5 — bandwidth cap sweep (256 MiB guest, idle)");
  table.columns({"cap (MiB/s)", "L0-L0 e2e (s)", "L0-L1 e2e (s)",
                 "L0-L1 / L0-L0"});
  for (std::size_t i = 0; i < std::size(kCaps); ++i) {
    table.row({csk::format_fixed(kCaps[i] / kMiB, 0),
               csk::format_fixed(r.l0l0[i], 1),
               csk::format_fixed(r.l0l1[i], 1),
               csk::format_fixed(r.l0l1[i] / r.l0l0[i], 2)});
  }
  table.note("L0-L0 keeps scaling with the cap; the nested destination "
             "saturates near ~20 MiB/s — the rootkit cannot buy a faster "
             "installation with migrate_set_speed alone");
  table.print();

  for (std::size_t i = 0; i < std::size(kCaps); ++i) {
    const std::string cap =
        "cap=" + csk::format_fixed(kCaps[i] / kMiB, 0) + "MiBps";
    csk::bench::report()
        .add(cap + "/L0-L0_e2e_s", r.l0l0[i], "s")
        .add(cap + "/L0-L1_e2e_s", r.l0l1[i], "s");
  }
}

}  // namespace

int main(int argc, char** argv) {
  return csk::bench::bench_main(argc, argv, print_tables);
}
