// Network fabric scaling sweep — burst-batched vs per-packet delivery.
//
// Drives fleet-scale netperf traffic (64–1024 endpoints spread over a
// 16-host topology, every stream sharing one zero-copy payload buffer)
// through SimNetwork in both delivery modes and measures CPU-time
// packets/s of the simulator's own hot path, not simulated time. The burst
// pump coalesces back-to-back arrivals into one simulator event per drain
// (the NIC-interrupt-moderation analogue), eliminating the per-packet
// event allocation + priority-queue traffic that dominates fleet runs.
//
// Each run has two phases, timed separately because they answer different
// questions:
//   * blast  — send() for every packet. Arrival math, link serialization,
//     stats and the fault hook are identical in both modes by design; the
//     modes differ only in how the delivery is *scheduled* (a heap push
//     into the simulator's event queue vs an O(1) link-FIFO append).
//   * drain  — run_until_idle(): the delivery engine itself. Per-packet
//     mode pays one simulator event per packet (heap pop across the full
//     event queue, closure allocation/free, dispatch bookkeeping); burst
//     mode pays one pump event per burst plus a tiny K-way merge step.
// The headline speedup is the drain phase — that is the path this fabric
// rework replaced — and the end-to-end (blast + drain) speedup is always
// reported next to it, since send-side work is mode-independent and
// dilutes the ratio.
//
// Equivalence is CSK_CHECKed inside the bench, not assumed: both modes
// must produce the identical delivery-order digest, identical NetworkStats
// and identical per-link byte counts, or the bench aborts. The traffic is
// pre-scheduled (non-reactive), the regime where a nonzero burst window is
// order- and stats-exact; reactive equivalence at window 0 is the golden
// tier in tests/net_test.cc.
//
// CSK_BENCH_TINY=1 shrinks the sweep to two small cells for CI smoke runs.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "workloads/netperf.h"

namespace {

using namespace csk;
using csk::bench::Table;

constexpr std::size_t kHosts = 16;
constexpr std::uint64_t kSegmentsPerEndpoint = 40;
// Each cell runs kReps times per mode and reports the best observed rate
// per metric: the fabric is deterministic, so reps only differ by cache /
// frequency noise, and the reps must agree byte-for-byte (CSK_CHECKed
// below).
constexpr int kReps = 5;

bool tiny() {
  const char* v = std::getenv("CSK_BENCH_TINY");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

std::vector<std::size_t> endpoint_counts() {
  if (tiny()) return {8, 16};
  return {64, 128, 256, 512, 1024};
}

// CPU time, not wall clock: the fabric is single-threaded and deterministic,
// so process CPU time measures exactly the work under test while scheduler
// preemption on a shared host (which can double a 10ms wall-clock region)
// does not count against either mode.
double now_s() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

struct ModeResult {
  double pps = 0;                 // end-to-end packets/s (blast + drain)
  double blast_pps = 0;           // send()-side packets/s
  double drain_pps = 0;           // delivery-engine packets/s
  std::uint64_t packets = 0;      // segments delivered
  std::uint64_t events = 0;       // simulator events dispatched
  std::uint64_t order_digest = 0; // FNV over (endpoint, seq) delivery order
  std::string stats;              // NetworkStats + per-link bytes, canonical
};

std::string stats_line(const net::SimNetwork& network) {
  const net::NetworkStats& s = network.stats();
  std::ostringstream os;
  os << s.packets_sent << '/' << s.packets_delivered << '/'
     << s.packets_dropped_unbound << '/' << s.bytes_delivered << '/'
     << s.packets_dropped_fault << '/' << s.packets_delayed_fault;
  for (std::size_t a = 0; a < kHosts; ++a) {
    for (std::size_t b = 0; b < kHosts; ++b) {
      const net::LinkStats ls = network.link_stats("s" + std::to_string(a),
                                                   "h" + std::to_string(b));
      if (ls.packets_sent != 0) {
        os << '|' << a << '>' << b << ':' << ls.packets_sent << ','
           << ls.bytes_sent;
      }
    }
  }
  return os.str();
}

ModeResult run_mode_once(std::size_t endpoints, net::DeliveryMode mode) {
  sim::Simulator sim;
  net::SimNetwork network(&sim);
  network.set_delivery_mode(mode);
  if (mode == net::DeliveryMode::kBurst) {
    network.set_burst_window(SimDuration::micros(100));
  }

  ModeResult out;
  out.order_digest = 0xcbf29ce484222325ull;
  std::uint64_t delivered = 0;
  for (std::size_t i = 0; i < endpoints; ++i) {
    const net::NetAddr addr{"h" + std::to_string(i % kHosts),
                            Port(static_cast<std::uint16_t>(1000 + i / kHosts))};
    // const& receiver: the digest only reads seq, so the fabric's rvalue
    // hand-off binds without a per-delivery Packet move in either mode.
    auto bound = network.bind(addr, [&out, &delivered, i](const net::Packet& p) {
      ++delivered;
      out.order_digest ^= (static_cast<std::uint64_t>(i) << 32) ^ p.seq;
      out.order_digest *= 0x100000001b3ull;
    });
    CSK_CHECK(bound.is_ok());
  }

  std::vector<workloads::NetperfPacketStream> streams;
  streams.reserve(endpoints);
  for (std::size_t i = 0; i < endpoints; ++i) {
    streams.emplace_back(
        &network,
        net::NetAddr{"s" + std::to_string(i % kHosts), Port(9)},
        net::NetAddr{"h" + std::to_string(i % kHosts),
                     Port(static_cast<std::uint16_t>(1000 + i / kHosts))});
  }

  const std::uint64_t events0 = sim.dispatched();
  const double t0 = now_s();
  for (auto& stream : streams) stream.blast(kSegmentsPerEndpoint);
  const double t1 = now_s();
  sim.run_until_idle();
  const double t2 = now_s();

  out.packets = delivered;
  out.events = sim.dispatched() - events0;
  out.pps = static_cast<double>(delivered) / (t2 - t0);
  out.blast_pps = static_cast<double>(delivered) / (t1 - t0);
  out.drain_pps = static_cast<double>(delivered) / (t2 - t1);
  out.stats = stats_line(network);
  CSK_CHECK(delivered == endpoints * kSegmentsPerEndpoint);
  return out;
}

ModeResult run_mode(std::size_t endpoints, net::DeliveryMode mode) {
  ModeResult best = run_mode_once(endpoints, mode);
  for (int rep = 1; rep < kReps; ++rep) {
    ModeResult r = run_mode_once(endpoints, mode);
    // Reps are deterministic replays; only the clock may differ. Each rate
    // keeps its own best (min observed CPU time), the usual benchmarking
    // answer to one-off cache evictions from neighbors on a shared host.
    CSK_CHECK(r.order_digest == best.order_digest);
    CSK_CHECK(r.stats == best.stats);
    CSK_CHECK(r.packets == best.packets);
    CSK_CHECK(r.events == best.events);
    best.pps = std::max(best.pps, r.pps);
    best.blast_pps = std::max(best.blast_pps, r.blast_pps);
    best.drain_pps = std::max(best.drain_pps, r.drain_pps);
  }
  return best;
}

struct Cell {
  std::size_t endpoints = 0;
  ModeResult per_packet;
  ModeResult burst;
};

Cell run_cell(std::size_t endpoints) {
  Cell cell;
  cell.endpoints = endpoints;
  cell.per_packet = run_mode(endpoints, net::DeliveryMode::kPerPacket);
  cell.burst = run_mode(endpoints, net::DeliveryMode::kBurst);
  // The acceptance gate: batching must be observationally invisible.
  CSK_CHECK(cell.burst.order_digest == cell.per_packet.order_digest);
  CSK_CHECK(cell.burst.stats == cell.per_packet.stats);
  CSK_CHECK(cell.burst.packets == cell.per_packet.packets);
  return cell;
}

const std::vector<Cell>& results() {
  static const std::vector<Cell> cached = [] {
    net::set_hot_path_counters_enabled(true);
    std::vector<Cell> cells;
    for (std::size_t n : endpoint_counts()) cells.push_back(run_cell(n));
    return cells;
  }();
  return cached;
}

void BM_NetScaling(benchmark::State& state) {
  const auto idx = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(results());
  // Tiny mode (CSK_BENCH_TINY) runs fewer cells than the registered range.
  if (idx >= results().size()) return;
  const Cell& c = results()[idx];
  state.counters["endpoints"] = static_cast<double>(c.endpoints);
  state.counters["perpacket_delivery_pps"] = c.per_packet.drain_pps;
  state.counters["burst_delivery_pps"] = c.burst.drain_pps;
  state.counters["delivery_speedup_x"] = c.burst.drain_pps / c.per_packet.drain_pps;
  state.counters["end_to_end_speedup_x"] = c.burst.pps / c.per_packet.pps;
}
BENCHMARK(BM_NetScaling)->DenseRange(0, 4)->Iterations(1);

void print_tables() {
  Table table("Network fabric scaling — burst-batched vs per-packet delivery");
  table.columns({"endpoints", "packets", "per-packet delivery (pkt/s)",
                 "burst delivery (pkt/s)", "delivery x", "end-to-end x",
                 "events/pkt (per-packet)", "events/pkt (burst)"});
  for (const Cell& c : results()) {
    table.row({std::to_string(c.endpoints), std::to_string(c.per_packet.packets),
               csk::format_fixed(c.per_packet.drain_pps, 0),
               csk::format_fixed(c.burst.drain_pps, 0),
               csk::format_fixed(c.burst.drain_pps / c.per_packet.drain_pps, 1),
               csk::format_fixed(c.burst.pps / c.per_packet.pps, 1),
               csk::format_fixed(static_cast<double>(c.per_packet.events) /
                                     static_cast<double>(c.per_packet.packets),
                                 2),
               csk::format_fixed(static_cast<double>(c.burst.events) /
                                     static_cast<double>(c.burst.packets),
                                 3)});
  }
  table.note("CPU-time throughput of the fabric's own data structures (not "
             "simulated time). 'delivery' times run_until_idle() alone — the "
             "event-dispatch path the burst pump replaces; 'end-to-end' adds "
             "the send() phase, which is mode-independent by construction. "
             "Both modes CSK_CHECKed to identical delivery order, "
             "NetworkStats and per-link bytes");
  table.print();

  for (const Cell& c : results()) {
    const std::string p = "endpoints=" + std::to_string(c.endpoints) + "/";
    csk::bench::report()
        .add(p + "perpacket_delivery_pps", c.per_packet.drain_pps, "packets/s")
        .add(p + "burst_delivery_pps", c.burst.drain_pps, "packets/s")
        .add(p + "delivery_speedup_x",
             c.burst.drain_pps / c.per_packet.drain_pps)
        .add(p + "perpacket_end_to_end_pps", c.per_packet.pps, "packets/s")
        .add(p + "burst_end_to_end_pps", c.burst.pps, "packets/s")
        .add(p + "end_to_end_speedup_x", c.burst.pps / c.per_packet.pps)
        .add(p + "perpacket_events_per_pkt",
             static_cast<double>(c.per_packet.events) /
                 static_cast<double>(c.per_packet.packets))
        .add(p + "burst_events_per_pkt",
             static_cast<double>(c.burst.events) /
                 static_cast<double>(c.burst.packets));
  }
  csk::bench::report().note(
      "burst window 100us over pre-scheduled netperf streams; delivery "
      "order digest, NetworkStats and per-link bytes CSK_CHECKed identical "
      "between modes before any number is reported; delivery_speedup_x "
      "isolates the dispatch path (one event per packet vs one per burst), "
      "end_to_end_speedup_x includes the mode-independent send() phase");
}

}  // namespace

int main(int argc, char** argv) {
  return csk::bench::bench_main(argc, argv, print_tables);
}
