// Ablation A6 — the cost of evading the dedup detector (§VI-D, measured).
//
// The paper's evasion-cost argument: to survive the two-step protocol the
// attacker must mirror every guest change into L1 *synchronously*, which
// means write-protecting all victim pages and eating one nested exit per
// victim write. SyncMirrorService implements exactly that attacker. This
// bench (a) confirms the evasion works — the detector now reports a clean
// host — and (b) prices it per workload: the trap tax scales with write
// rate and crosses 10 % for the compile-class workloads CloudSkulk was
// otherwise only ~25 % away from hiding inside.
#include <memory>

#include "bench_util.h"
#include "cloudskulk/installer.h"
#include "cloudskulk/services/sync_mirror.h"
#include "detect/dedup_detector.h"
#include "workloads/filebench.h"
#include "workloads/kernel_compile.h"
#include "workloads/workload.h"

namespace {

using csk::bench::Table;
using namespace csk;

struct Row {
  std::string workload;
  std::uint64_t traps = 0;
  double overhead_pct = 0;
  bool evaded = false;
};

std::unique_ptr<workloads::Workload> make_workload(const std::string& name) {
  if (name == "idle") return std::make_unique<workloads::IdleWorkload>();
  if (name == "kernel-compile") {
    return std::make_unique<workloads::KernelCompileWorkload>();
  }
  return std::make_unique<workloads::FilebenchWorkload>();
}

Row run(const std::string& workload_name) {
  vmm::World world;
  auto host_cfg = bench::paper_host_config();
  host_cfg.boot_touched_mib = 96;  // reduced scale: trap rate is what matters
  vmm::Host* host = world.make_host(host_cfg);
  auto vm_cfg = bench::paper_vm_config();
  vm_cfg.memory_mb = 256;
  (void)host->launch_vm_cmdline(vm_cfg.to_command_line()).value();

  cloudskulk::InstallerOptions opts;
  opts.rootkit_boot_touched_mib = 32;
  cloudskulk::CloudSkulkInstaller installer(host, opts);
  CSK_CHECK(installer.install().succeeded);

  detect::DedupDetectorConfig dcfg;
  dcfg.file_pages = 32;
  dcfg.merge_wait = SimDuration::seconds(10);
  detect::DedupDetector detector(host, dcfg);
  CSK_CHECK(detector.seed_guest(installer.nested_vm()->os()).is_ok());
  CSK_CHECK(detector.seed_guest(installer.rootkit_vm()->os()).is_ok());

  cloudskulk::SyncMirrorService mirror(installer.ritm(), &world.timing());
  CSK_CHECK(mirror.start().is_ok());
  CSK_CHECK(mirror.track_file(dcfg.file_name).is_ok());

  // The victim works for a while under write-protection.
  auto workload = make_workload(workload_name);
  installer.nested_vm()->set_dirty_page_source(
      [wl = workload.get()](SimDuration elapsed) {
        return wl->dirty_rate(elapsed);
      });
  const SimDuration window = SimDuration::seconds(60);
  world.simulator().run_for(window);
  installer.nested_vm()->clear_dirty_page_source();

  Row row;
  row.workload = workload_name;
  // Run the full detection protocol with the mirror live.
  auto verdict = detector.run(installer.nested_vm()->os());
  CSK_CHECK(verdict.is_ok());
  row.evaded = verdict->verdict == detect::DedupVerdict::kNoNestedVm;
  row.traps = mirror.stats().write_traps;
  row.overhead_pct = 100.0 * mirror.overhead_fraction(
                                 window + dcfg.merge_wait + dcfg.merge_wait);
  return row;
}

const char* kWorkloads[3] = {"idle", "filebench", "kernel-compile"};

struct Results {
  Row rows[3];
};

const Results& results() {
  static const Results cached = [] {
    Results r;
    for (int w = 0; w < 3; ++w) r.rows[w] = run(kWorkloads[w]);
    return r;
  }();
  return cached;
}

void BM_MirrorCost(benchmark::State& state) {
  const int w = static_cast<int>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(results());
  const Row& row = results().rows[w];
  state.counters["write_traps"] = static_cast<double>(row.traps);
  state.counters["victim_overhead_pct"] = row.overhead_pct;
  state.counters["detector_evaded"] = row.evaded ? 1 : 0;
  state.SetLabel(row.workload);
}
BENCHMARK(BM_MirrorCost)->DenseRange(0, 2)->Iterations(1);

void print_tables() {
  Table table("Ablation A6 — §VI-D evasion (synchronous write mirroring), "
              "measured");
  table.columns({"victim workload", "write traps (60 s)", "victim overhead",
                 "dedup detector evaded"});
  for (const Row& row : results().rows) {
    table.row({row.workload, std::to_string(row.traps),
               csk::format_fixed(row.overhead_pct, 2) + "%",
               row.evaded ? "yes" : "no"});
  }
  table.note("the evasion works — and costs one nested exit (~23 µs) per "
             "victim write: negligible for an idle guest, ~8.5% for "
             "compile-class workloads, on top of CloudSkulk's own ~25% — a "
             "louder anomaly than the one the rootkit exists to avoid, plus "
             "L1 kernel modifications the paper notes are themselves "
             "detectable");
  table.print();

  for (const Row& row : results().rows) {
    csk::bench::report()
        .add(row.workload + "/write_traps", static_cast<double>(row.traps))
        .add(row.workload + "/victim_overhead_pct", row.overhead_pct, "%")
        .add(row.workload + "/detector_evaded", row.evaded ? 1 : 0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  return csk::bench::bench_main(argc, argv, print_tables);
}
