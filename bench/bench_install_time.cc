// Regenerates the §V-A demonstration: a complete CloudSkulk installation
// against an idle 1 GiB guest, timed end-to-end — the paper's video shows
// it completing in under a minute on one physical machine.
#include "bench_util.h"
#include "cloudskulk/installer.h"

namespace {

using csk::bench::Table;
using namespace csk;

struct InstallResult {
  cloudskulk::InstallReport report;
};

const InstallResult& result() {
  static const InstallResult cached = [] {
    vmm::World world;
    auto host_cfg = bench::paper_host_config();
    vmm::Host* host = world.make_host(host_cfg);
    (void)host->launch_vm_cmdline(bench::paper_vm_config().to_command_line())
        .value();
    cloudskulk::CloudSkulkInstaller installer(host, {});
    InstallResult r{installer.install()};
    CSK_CHECK_MSG(r.report.succeeded, r.report.error);
    return r;
  }();
  return cached;
}

void BM_InstallTime_IdleGuest(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(result());
  const auto& rep = result().report;
  state.counters["install_s_sim"] = rep.total_time.seconds_f();
  state.counters["migration_s_sim"] = rep.migration.total_time.seconds_f();
  state.counters["downtime_ms_sim"] = rep.migration.downtime.millis_f();
  state.counters["under_one_minute"] =
      rep.total_time < SimDuration::seconds(60) ? 1 : 0;
}
BENCHMARK(BM_InstallTime_IdleGuest)->Iterations(1);

void print_tables() {
  const auto& rep = result().report;
  Table table("§V-A — CloudSkulk installation walkthrough (idle guest)");
  table.columns({"Step", "Detail"});
  for (const std::string& line : rep.log) {
    const auto colon = line.find(": ");
    table.row({line.substr(0, colon), line.substr(colon + 2)});
  }
  table.row({"total", rep.total_time.to_string() + " end-to-end (paper: "
             "\"less than 1 minute\", dominated by the migration)"});
  table.row({"victim downtime", rep.migration.downtime.to_string()});
  table.row({"pid", "original " + rep.original_pid.to_string() +
             " -> final " + rep.final_pid.to_string()});
  table.print();

  csk::bench::report()
      .add("install_total_s", rep.total_time.seconds_f(), "s")
      .add("migration_s", rep.migration.total_time.seconds_f(), "s")
      .add("victim_downtime_ms", rep.migration.downtime.millis_f(), "ms")
      .add("under_paper_minute",
           rep.total_time < SimDuration::seconds(60) ? 1 : 0)
      .note("paper claims installation \"in less than 1 minute\" without a "
            "precise figure; under_paper_minute checks the bound");
}

}  // namespace

int main(int argc, char** argv) {
  return csk::bench::bench_main(argc, argv, print_tables);
}
