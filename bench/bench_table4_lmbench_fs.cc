// Regenerates Table IV: lmbench file-system latency — file creations and
// deletions per second at 0K / 1K / 4K / 10K file sizes, L0/L1/L2.
#include "bench_util.h"
#include "workloads/lmbench.h"

namespace {

using csk::bench::Table;
using csk::hv::ExecEnv;
using csk::hv::Layer;
using csk::hv::TimingModel;
using csk::workloads::LmbenchSuite;

struct TableIVResults {
  std::vector<csk::workloads::LmbenchFsResult> rows[3];
};

const TableIVResults& results() {
  static const TableIVResults cached = [] {
    TableIVResults r;
    const TimingModel model;
    const LmbenchSuite suite;
    for (int layer = 0; layer < 3; ++layer) {
      r.rows[layer] =
          suite.run_fs(ExecEnv{static_cast<Layer>(layer), &model, false});
    }
    return r;
  }();
  return cached;
}

void BM_TableIV_Fs(benchmark::State& state) {
  const int layer = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(results());
  }
  for (const auto& row : results().rows[layer]) {
    const std::string size = std::to_string(row.file_bytes / 1024) + "K";
    state.counters["create_" + size + "_per_s"] = row.creations_per_sec;
    state.counters["delete_" + size + "_per_s"] = row.deletions_per_sec;
  }
  state.SetLabel(csk::hv::layer_name(static_cast<Layer>(layer)));
}
BENCHMARK(BM_TableIV_Fs)->DenseRange(0, 2)->Iterations(1);

std::string k(double v) {
  return csk::format_fixed(v, 0);
}

void print_tables() {
  const TableIVResults& r = results();
  Table table(
      "Table IV — lmbench file system latency: creations/deletions per "
      "second");
  table.columns({"Config", "0K create", "0K delete", "1K create", "1K delete",
                 "4K create", "4K delete", "10K create", "10K delete"});
  for (int layer = 0; layer < 3; ++layer) {
    std::vector<std::string> cells{
        csk::hv::layer_name(static_cast<Layer>(layer))};
    for (const auto& row : r.rows[layer]) {
      cells.push_back(k(row.creations_per_sec));
      cells.push_back(k(row.deletions_per_sec));
    }
    table.row(cells);
  }
  table.note("paper L0 row: 126418/379158, 99112/280884, 99627/279893, "
             "79869/214767 — page-cache file ops barely degrade under "
             "(nested) virtualization");
  table.note("the paper's L2 0K-creation outlier (2,430/s) is an "
             "unexplained measurement artifact and is not modeled "
             "(DESIGN.md §5)");
  table.print();

  const char* size_labels[] = {"0K", "1K", "4K", "10K"};
  const double paper_l0_create[] = {126418, 99112, 99627, 79869};
  const double paper_l0_delete[] = {379158, 280884, 279893, 214767};
  for (std::size_t i = 0; i < r.rows[0].size() && i < std::size(size_labels);
       ++i) {
    const auto& row = r.rows[0][i];
    csk::bench::report()
        .add_paper(std::string("L0/") + size_labels[i] + "_create_per_s",
                   row.creations_per_sec, paper_l0_create[i], "ops/s")
        .add_paper(std::string("L0/") + size_labels[i] + "_delete_per_s",
                   row.deletions_per_sec, paper_l0_delete[i], "ops/s");
  }
}

}  // namespace

int main(int argc, char** argv) {
  return csk::bench::bench_main(argc, argv, print_tables);
}
