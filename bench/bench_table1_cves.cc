// Regenerates Table I: VM-escape CVEs reported 2015-2020 per platform.
#include "bench_util.h"
#include "cve/vm_escape_cves.h"

namespace {

using csk::bench::Table;
using namespace csk::cve;

void BM_TableI_Counts(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(count_matrix());
  }
  const CveMatrix m = count_matrix();
  state.counters["total"] = m.grand_total();
  for (std::size_t p = 0; p < kNumPlatforms; ++p) {
    state.counters[platform_name(static_cast<Platform>(p))] =
        m.platform_total(static_cast<Platform>(p));
  }
}
BENCHMARK(BM_TableI_Counts)->Iterations(1);

void print_tables() {
  const CveMatrix m = count_matrix();
  Table table("Table I — VM Escape CVE Vulnerabilities reported 2015-2020");
  std::vector<std::string> headers{"Year"};
  for (std::size_t p = 0; p < kNumPlatforms; ++p) {
    headers.push_back(platform_name(static_cast<Platform>(p)));
  }
  headers.push_back("Year total");
  table.columns(headers);
  for (int year = CveMatrix::kFirstYear; year <= CveMatrix::kLastYear; ++year) {
    std::vector<std::string> row{std::to_string(year)};
    for (std::size_t p = 0; p < kNumPlatforms; ++p) {
      row.push_back(std::to_string(m.counts[year - 2015][p]));
    }
    row.push_back(std::to_string(m.year_total(year)));
    table.row(row);
  }
  std::vector<std::string> totals{"Total"};
  for (std::size_t p = 0; p < kNumPlatforms; ++p) {
    totals.push_back(std::to_string(m.platform_total(static_cast<Platform>(p))));
  }
  totals.push_back(std::to_string(m.grand_total()));
  table.row(totals);
  table.note("paper totals: VMware 29, VirtualBox 15, Xen 15, Hyper-V 14, "
             "KVM/QEMU 23 — reproduced exactly");
  table.print();

  const double paper_totals[kNumPlatforms] = {29, 15, 15, 14, 23};
  for (std::size_t p = 0; p < kNumPlatforms; ++p) {
    csk::bench::report().add_paper(
        std::string("total/") + platform_name(static_cast<Platform>(p)),
        m.platform_total(static_cast<Platform>(p)), paper_totals[p], "CVEs");
  }
  csk::bench::report().add_paper("grand_total", m.grand_total(), 96, "CVEs");

  // Full listing, grouped like the paper's cells.
  Table listing("Table I — full CVE listing");
  listing.columns({"Year", "Platform", "CVE"});
  for (const VmEscapeCve& cve : vm_escape_cves()) {
    listing.row({std::to_string(cve.year), platform_name(cve.platform),
                 cve.id});
  }
  listing.print();
}

}  // namespace

int main(int argc, char** argv) {
  return csk::bench::bench_main(argc, argv, print_tables);
}
