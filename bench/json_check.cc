// Validates a BENCH_<name>.json report: parses it with the same JSON
// implementation the benches serialize with, checks the required top-level
// keys, and sanity-checks the entries array. Exit 0 on success, 1 with a
// diagnostic otherwise — wired into CTest as the bench smoke test.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/json.h"

namespace {

int fail(const std::string& message) {
  std::fprintf(stderr, "json_check: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return fail("usage: json_check <report.json> [required_key...]");
  }
  const char* path = argv[1];
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return fail(std::string("cannot open ") + path);
  std::string body;
  char buf[4096];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof(buf), f)) > 0;) {
    body.append(buf, n);
  }
  std::fclose(f);

  auto parsed = csk::obs::JsonValue::parse(body);
  if (!parsed.is_ok()) {
    return fail(std::string(path) + ": " + parsed.status().to_string());
  }
  if (!parsed->is_object()) return fail("top level is not an object");

  for (int i = 2; i < argc; ++i) {
    if (parsed->find(argv[i]) == nullptr) {
      return fail(std::string("missing required key \"") + argv[i] + "\"");
    }
  }

  // Every entry must carry a key and a measured number.
  if (const csk::obs::JsonValue* entries = parsed->find("entries")) {
    if (!entries->is_array()) return fail("\"entries\" is not an array");
    std::size_t index = 0;
    for (const auto& entry : entries->as_array()) {
      if (!entry.is_object() || entry.find("key") == nullptr ||
          entry.find("measured") == nullptr) {
        return fail("entry " + std::to_string(index) +
                    " lacks key/measured fields");
      }
      ++index;
    }
    std::printf("json_check: %s ok (%zu entries)\n", path, index);
  } else {
    std::printf("json_check: %s ok\n", path);
  }
  return 0;
}
