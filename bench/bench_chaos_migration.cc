// Chaos sweep: the CloudSkulk installation migration under injected faults.
//
// The paper's installation step (§IV-A) is a live migration, and its
// stealth depends on that migration *finishing* — a half-migrated victim is
// a loud failure. This bench stresses the recovery layer: per-chunk
// retransmission under packet loss, attempt retry with exponential backoff
// after a mid-round abort, survival of a hard partition window and of a
// bandwidth collapse, plus downtime-SLA accounting throughout.
//
// Every cell is a deterministic seeded simulation: two runs of this binary
// produce bit-identical BENCH_chaos_migration.json.
#include <memory>
#include <string>

#include "bench_util.h"
#include "fault/injector.h"
#include "vmm/migration.h"

namespace {

using csk::bench::Table;
using namespace csk;
using namespace csk::vmm;

struct ChaosCell {
  const char* name;
  fault::FaultPlan plan;
  MigrationStats stats;
  std::uint64_t net_drops = 0;
  std::uint64_t net_delays = 0;
  std::uint64_t injected_aborts = 0;
};

/// One L0-L0 migration of a small VM (512 MiB, 128 MiB touched) with the
/// recovery knobs armed, under `plan`. The same recovery config is used in
/// every cell so that the plans are the only variable.
void run_cell(ChaosCell& cell) {
  World world;
  auto host_cfg = bench::paper_host_config();
  host_cfg.ksm_enabled = false;  // isolate migration from dedup side effects
  Host* host = world.make_host(host_cfg);

  auto src_cfg = bench::paper_vm_config("guest0");
  src_cfg.memory_mb = 512;
  VirtualMachine* source =
      host->launch_vm(src_cfg, /*boot_touched_mib=*/128).value();

  auto dest_cfg = bench::paper_vm_config("guest0-dst");
  dest_cfg.memory_mb = 512;
  dest_cfg.monitor.telnet_port = 0;
  dest_cfg.netdevs[0].hostfwd.clear();
  dest_cfg.incoming_port = 4444;
  (void)host->launch_vm(dest_cfg, /*boot_touched_mib=*/128).value();

  MigrationConfig cfg;  // 32 MiB/s throttle, 300 ms downtime target
  cfg.retry.max_attempts = 4;
  cfg.retry.initial_backoff = SimDuration::millis(200);
  cfg.retry.backoff_multiplier = 2.0;
  cfg.chunk_timeout = SimDuration::seconds(2);
  cfg.round_timeout = SimDuration::seconds(120);
  cfg.downtime_sla = SimDuration::millis(300);

  net::NetAddr target{host->node_name(), Port(4444)};
  MigrationJob job(&world, source, target, cfg);
  fault::Injector injector(&world, cell.plan);
  injector.attach_migration(&job);
  injector.arm();
  job.start();

  const SimTime deadline = world.simulator().now() + SimDuration::seconds(3600);
  while (!job.done() && world.simulator().now() < deadline) {
    if (!world.simulator().step()) break;
  }
  CSK_CHECK_MSG(job.done() && job.stats().succeeded,
                std::string("chaos cell '") + cell.name +
                    "' failed: " + job.stats().error);
  cell.stats = job.stats();
  cell.net_drops = injector.count("net.drop");
  cell.net_delays = injector.count("net.delay");
  cell.injected_aborts = injector.count("migration.abort");
}

constexpr int kCells = 7;

std::vector<ChaosCell>& results() {
  static std::vector<ChaosCell>* cached = [] {
    auto* cells = new std::vector<ChaosCell>(kCells);
    auto& v = *cells;
    const SimDuration whole_run = SimDuration::seconds(3600);

    v[0].name = "baseline";  // recovery armed, fabric perfect

    v[1].name = "loss-5pct";
    v[1].plan.seed = 101;
    v[1].plan.net.push_back({"", "", SimDuration::zero(), whole_run, 0.05});

    v[2].name = "loss-10pct";
    v[2].plan.seed = 102;
    v[2].plan.net.push_back({"", "", SimDuration::zero(), whole_run, 0.10});

    v[3].name = "loss-20pct";
    v[3].plan.seed = 103;
    v[3].plan.net.push_back({"", "", SimDuration::zero(), whole_run, 0.20});

    v[4].name = "abort-midround";  // the retry-with-backoff showcase
    v[4].plan.seed = 104;
    v[4].plan.migration_aborts.push_back(
        {SimDuration::seconds(2), "injected mid-round abort"});

    v[5].name = "partition-3s";
    v[5].plan.seed = 105;
    {
      fault::NetFaultSpec part;
      part.at = SimDuration::seconds(2);
      part.duration = SimDuration::seconds(3);
      part.partition = true;
      v[5].plan.net.push_back(part);
    }

    v[6].name = "bw-collapse-4x";
    v[6].plan.seed = 106;
    v[6].plan.bandwidth_collapses.push_back(
        {SimDuration::seconds(1), SimDuration::seconds(5), 0.25});

    for (auto& cell : v) run_cell(cell);
    return cells;
  }();
  return *cached;
}

void BM_Chaos_Migration(benchmark::State& state) {
  const auto i = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(results());
  }
  const ChaosCell& c = results()[i];
  state.counters["end_to_end_s_sim"] = c.stats.total_time.seconds_f();
  state.counters["attempts"] = c.stats.attempts;
  state.counters["retries"] = c.stats.retries;
  state.counters["chunk_retransmits"] =
      static_cast<double>(c.stats.chunk_retransmits);
  state.counters["net_drops"] = static_cast<double>(c.net_drops);
  state.SetLabel(c.name);
}
BENCHMARK(BM_Chaos_Migration)
    ->DenseRange(0, kCells - 1)
    ->Iterations(1);

void print_tables() {
  auto& r = results();
  Table table("Chaos sweep — installation migration under injected faults");
  table.columns({"Fault plan", "total (s)", "rounds", "attempts", "retries",
                 "chunk rexmit", "stale", "drops", "downtime", "SLA"});
  for (const ChaosCell& c : r) {
    table.row({c.name, csk::format_fixed(c.stats.total_time.seconds_f(), 1),
               std::to_string(c.stats.rounds),
               std::to_string(c.stats.attempts),
               std::to_string(c.stats.retries),
               std::to_string(c.stats.chunk_retransmits),
               std::to_string(c.stats.stale_chunks),
               std::to_string(c.net_drops), c.stats.downtime.to_string(),
               c.stats.downtime_sla_met ? "met" : "MISSED"});
  }
  table.note("recovery config for every cell: 4 attempts, 200 ms backoff "
             "doubling per retry, 2 s chunk retransmit timer, 120 s round "
             "watchdog, 300 ms downtime SLA");
  table.note("the abort-midround cell must show attempts >= 2 with "
             "succeeded: a mid-round abort recovered by the retry layer");
  table.print();

  const ChaosCell& baseline = r[0];
  for (const ChaosCell& c : r) {
    const std::string n = c.name;
    csk::bench::report()
        .add(n + "/total_s", c.stats.total_time.seconds_f(), "s")
        .add(n + "/downtime_ms", c.stats.downtime.millis_f(), "ms")
        .add(n + "/rounds", static_cast<double>(c.stats.rounds))
        .add(n + "/attempts", static_cast<double>(c.stats.attempts))
        .add(n + "/retries", static_cast<double>(c.stats.retries))
        .add(n + "/chunk_retransmits",
             static_cast<double>(c.stats.chunk_retransmits))
        .add(n + "/stale_chunks", static_cast<double>(c.stats.stale_chunks))
        .add(n + "/net_drops", static_cast<double>(c.net_drops))
        .add(n + "/backoff_total_ms", c.stats.backoff_total.millis_f(), "ms")
        .add(n + "/downtime_sla_met", c.stats.downtime_sla_met ? 1.0 : 0.0)
        .add(n + "/slowdown_vs_baseline",
             c.stats.total_time.seconds_f() /
                 baseline.stats.total_time.seconds_f());
  }
  // Machine-checkable acceptance witness: the injected mid-round abort was
  // recovered by at least one successful retry.
  const ChaosCell& abort_cell = r[4];
  CSK_CHECK(abort_cell.injected_aborts >= 1);
  CSK_CHECK(abort_cell.stats.retries >= 1);
  CSK_CHECK(abort_cell.stats.succeeded);
  csk::bench::report()
      .add("abort-midround/injected_aborts",
           static_cast<double>(abort_cell.injected_aborts))
      .note("no published counterpart: this sweep characterizes the "
            "simulator's recovery layer, not a paper figure")
      .note("abort-midround proves >=1 successful migration retry after an "
            "injected mid-round abort (retries >= 1 and succeeded)");
}

}  // namespace

int main(int argc, char** argv) {
  return csk::bench::bench_main(argc, argv, print_tables);
}
