// Ablation A7 — single-host vs cross-host migration (§V-A context).
//
// "The major reason that the migration being so fast is because the attack
// involves only one physical machine, while in a typical VM live migration
// scenario, there are two physical machines involved, thus it incurs a lot
// of network traffic." This bench quantifies that: the same 1 GiB idle
// guest migrated in-host (CloudSkulk's path) vs across Ethernet links of
// decreasing capacity, with the bandwidth throttle lifted so the physical
// path is what gates.
#include "bench_util.h"
#include "vmm/migration.h"

namespace {

using csk::bench::Table;
using namespace csk;
using namespace csk::vmm;

struct Row {
  std::string path;
  double e2e_s = 0;
};

Row run(double link_bytes_per_sec, const std::string& label) {
  World world;
  auto host_cfg = bench::paper_host_config();
  host_cfg.ksm_enabled = false;
  Host* src_host = world.make_host(host_cfg);
  Host* dst_host = src_host;
  if (link_bytes_per_sec > 0) {
    auto cfg2 = host_cfg;
    cfg2.name = "host1";
    dst_host = world.make_host(cfg2);
    net::LinkModel link;
    link.latency = SimDuration::micros(500);
    link.bytes_per_sec = link_bytes_per_sec;
    link.per_packet_cpu = SimDuration::micros(10);
    world.network().set_link("host0", "host1", link);
  }

  VirtualMachine* source =
      src_host->launch_vm(bench::paper_vm_config()).value();
  auto dest_cfg = bench::paper_vm_config("guest0-dst");
  dest_cfg.monitor.telnet_port = 0;
  dest_cfg.netdevs[0].hostfwd.clear();
  dest_cfg.incoming_port = 4444;
  (void)dst_host->launch_vm(dest_cfg).value();

  MigrationConfig cfg;
  cfg.bandwidth_limit_bytes_per_sec = 1e12;  // uncapped: the path gates
  MigrationJob job(&world, source,
                   net::NetAddr{dst_host->node_name(), Port(4444)}, cfg);
  job.start();
  while (!job.done()) {
    if (!world.simulator().step()) break;
  }
  CSK_CHECK_MSG(job.stats().succeeded, job.stats().error);
  return Row{label, job.stats().total_time.seconds_f()};
}

struct Results {
  Row rows[4];
};

const Results& results() {
  static const Results cached = [] {
    Results r;
    r.rows[0] = run(0, "single host (CloudSkulk's path)");
    r.rows[1] = run(1.25e9, "cross-host, 10 GbE");
    r.rows[2] = run(1.25e8, "cross-host, 1 GbE");
    r.rows[3] = run(1.25e7, "cross-host, 100 Mb/s");
    return r;
  }();
  return cached;
}

void BM_CrossHost(benchmark::State& state) {
  const auto idx = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(results());
  state.counters["e2e_s_sim"] = results().rows[idx].e2e_s;
  state.SetLabel(results().rows[idx].path);
}
BENCHMARK(BM_CrossHost)->DenseRange(0, 3)->Iterations(1);

void print_tables() {
  Table table("Ablation A7 — single-host vs cross-host migration "
              "(1 GiB idle guest, throttle lifted)");
  table.columns({"path", "end-to-end (s)"});
  for (const Row& row : results().rows) {
    table.row({row.path, csk::format_fixed(row.e2e_s, 1)});
  }
  table.note("CloudSkulk never leaves the machine: no NIC serialization, "
             "no cross-host latency — a big part of why the whole install "
             "fits under a minute");
  table.print();

  const char* keys[4] = {"single_host", "cross_host_10GbE", "cross_host_1GbE",
                         "cross_host_100Mbps"};
  const Results& r = results();
  for (std::size_t i = 0; i < 4; ++i) {
    csk::bench::report().add(std::string(keys[i]) + "/e2e_s", r.rows[i].e2e_s,
                             "s");
  }
}

}  // namespace

int main(int argc, char** argv) {
  return csk::bench::bench_main(argc, argv, print_tables);
}
