// Ablation A2 — sensitivity of the L2 overheads to the nested exit-cost
// multiplier (how many times an L1 exit an L2 exit costs).
//
// Turtles-era hardware without VMCS shadowing sits near m ~ 20; modern
// nested-virt optimizations push m down. This sweep shows which paper
// results survive better hardware: Fig 2's +25.7 % compile overhead and
// Table III's IPC blowup shrink with m, while Fig 3 stays flat throughout.
#include "bench_util.h"
#include "guestos/costs.h"
#include "workloads/kernel_compile.h"

namespace {

using csk::bench::Table;
using namespace csk;
using namespace csk::hv;

constexpr double kMultipliers[] = {1, 5, 10, 19.3, 30, 40};

struct Row {
  double m;
  double pipe_l2_us;
  double fork_exit_l2_us;
  double compile_ratio_l2_l1;
  double nested_receive_mib_s;
};

Row run(double m) {
  const TimingModel model = TimingModel::with_nested_exit_multiplier(m);
  Row row;
  row.m = m;
  row.pipe_l2_us =
      model.price(guestos::pipe_latency_cost(), Layer::kL2).micros_f();
  OpCost fe = guestos::fork_cost();
  fe += guestos::exit_cost();
  row.fork_exit_l2_us = model.price(fe, Layer::kL2).micros_f();

  const workloads::KernelCompileWorkload compile;
  const ExecEnv l1{Layer::kL1, &model, false};
  const ExecEnv l2{Layer::kL2, &model, false};
  row.compile_ratio_l2_l1 =
      compile.run(l2).seconds_f() / compile.run(l1).seconds_f();

  // Per-page migration receive cost at a nested destination (the Fig 4
  // bottleneck): cpu 300ns + 1 fault + 8.5 exits.
  OpCost page;
  page.cpu_ns = 300;
  page.mem_intensity = 0.6;
  page.n_faults = 1;
  page.n_exits = 8.5;
  const double us_per_page = model.price(page, Layer::kL2).micros_f();
  row.nested_receive_mib_s = 4096.0 / us_per_page;  // bytes per µs = MiB/s
  return row;
}

struct Results {
  Row rows[std::size(kMultipliers)];
};

const Results& results() {
  static const Results cached = [] {
    Results r;
    for (std::size_t i = 0; i < std::size(kMultipliers); ++i) {
      r.rows[i] = run(kMultipliers[i]);
    }
    return r;
  }();
  return cached;
}

void BM_ExitMultiplier(benchmark::State& state) {
  const auto idx = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(results());
  const Row& row = results().rows[idx];
  state.counters["multiplier"] = row.m;
  state.counters["pipe_L2_us"] = row.pipe_l2_us;
  state.counters["compile_L2_over_L1"] = row.compile_ratio_l2_l1;
  state.counters["nested_recv_MiBps"] = row.nested_receive_mib_s;
}
BENCHMARK(BM_ExitMultiplier)
    ->DenseRange(0, std::size(kMultipliers) - 1)
    ->Iterations(1);

void print_tables() {
  Table table("Ablation A2 — nested exit-cost multiplier sweep");
  table.columns({"multiplier m", "pipe latency L2 (µs)", "fork+exit L2 (µs)",
                 "compile L2/L1", "nested recv (MiB/s)"});
  for (const Row& row : results().rows) {
    table.row({csk::format_fixed(row.m, 1),
               csk::format_fixed(row.pipe_l2_us, 2),
               csk::format_fixed(row.fork_exit_l2_us, 1),
               csk::format_fixed(row.compile_ratio_l2_l1, 3),
               csk::format_fixed(row.nested_receive_mib_s, 1)});
  }
  table.note("m = 19.3 reproduces the paper's testbed (pipe 65.5 µs, "
             "compile +25.7 %, ~20 MiB/s nested receive => 26 s idle "
             "install). Faster nested virt (small m) makes CloudSkulk both "
             "quicker to install and harder to notice — the paper's "
             "stealthiness argument strengthens over time.");
  table.print();

  for (const Row& row : results().rows) {
    const std::string m = "m=" + csk::format_fixed(row.m, 1);
    csk::bench::report()
        .add(m + "/pipe_l2_us", row.pipe_l2_us, "us")
        .add(m + "/fork_exit_l2_us", row.fork_exit_l2_us, "us")
        .add(m + "/compile_l2_over_l1", row.compile_ratio_l2_l1)
        .add(m + "/nested_recv_mib_s", row.nested_receive_mib_s, "MiB/s");
  }
}

}  // namespace

int main(int argc, char** argv) {
  return csk::bench::bench_main(argc, argv, print_tables);
}
