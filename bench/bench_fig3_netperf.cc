// Regenerates Figure 3: Netperf TCP_STREAM throughput at L0 / L1 / L2.
//
// Paper shape: all three layers statistically indistinguishable — the
// relative stddevs (1.11 / 10.32 / 3.96 %) dominate the mean differences.
#include "bench_util.h"
#include "common/stats.h"
#include "workloads/netperf.h"

namespace {

using csk::RunningStats;
using csk::bench::Table;
using csk::hv::ExecEnv;
using csk::hv::Layer;
using csk::hv::TimingModel;
using csk::workloads::NetperfWorkload;

struct Fig3Results {
  RunningStats per_layer[3];
};

const Fig3Results& results() {
  static const Fig3Results cached = [] {
    Fig3Results r;
    const TimingModel model;
    const NetperfWorkload netperf;
    csk::Rng rng(0xF163);
    for (int layer = 0; layer < 3; ++layer) {
      const ExecEnv env{static_cast<Layer>(layer), &model, false};
      for (int run = 0; run < 5; ++run) {
        r.per_layer[layer].add(netperf.throughput_bps(env, rng) / 1e9);
      }
    }
    return r;
  }();
  return cached;
}

void BM_Fig3_Netperf(benchmark::State& state) {
  const int layer = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(results());
  }
  state.counters["throughput_gbps"] = results().per_layer[layer].mean();
  state.counters["rel_stddev_pct"] =
      results().per_layer[layer].rel_stddev_pct();
  state.SetLabel(csk::hv::layer_name(static_cast<Layer>(layer)));
}
BENCHMARK(BM_Fig3_Netperf)->DenseRange(0, 2)->Iterations(1);

void print_tables() {
  const Fig3Results& r = results();
  Table table("Figure 3 — Netperf TCP_STREAM throughput (5-run averages)");
  table.columns({"Env", "throughput (Gbps)", "rel stddev", "vs layer below",
                 "paper rel stddev"});
  const char* paper_sd[3] = {"1.11%", "10.32%", "3.96%"};
  for (int layer = 0; layer < 3; ++layer) {
    std::vector<std::string> row{
        csk::hv::layer_name(static_cast<Layer>(layer)),
        csk::format_fixed(r.per_layer[layer].mean(), 2),
        csk::format_fixed(r.per_layer[layer].rel_stddev_pct(), 2) + "%",
        layer == 0 ? "-"
                   : csk::bench::pct_delta(r.per_layer[layer - 1].mean(),
                                           r.per_layer[layer].mean()),
        paper_sd[layer]};
    table.row(row);
  }
  table.note("paper: +8.95% L1->L2, below the stddevs — \"nearly the same "
             "across all the execution environments\"; bulk network "
             "workloads cannot reveal the rootkit");
  table.print();

  const double paper_sd_pct[3] = {1.11, 10.32, 3.96};
  for (int layer = 0; layer < 3; ++layer) {
    const std::string env = csk::hv::layer_name(static_cast<Layer>(layer));
    csk::bench::report()
        .add(env + "/throughput_gbps", r.per_layer[layer].mean(), "Gbps")
        .add_paper(env + "/rel_stddev_pct",
                   r.per_layer[layer].rel_stddev_pct(), paper_sd_pct[layer],
                   "%");
  }
  csk::bench::report().add_paper(
      "L1_to_L2/delta_pct",
      (r.per_layer[2].mean() - r.per_layer[1].mean()) /
          r.per_layer[1].mean() * 100.0,
      8.95, "%");
}

}  // namespace

int main(int argc, char** argv) {
  return csk::bench::bench_main(argc, argv, print_tables);
}
