// Fleet sweep: the paper's evaluation grid as one parallel run.
//
// Every other bench in this repo walks its cells one at a time on one
// thread. This bench shards a 64-cell sweep — a mix of the three scenario
// families the evaluation is made of (installation migrations under packet
// loss, dedup detection protocols, guest workloads) — across the fleet
// runner's work-stealing pool, and measures what that buys and what it
// cannot be allowed to cost:
//
//   * wall-clock speedup of the pooled pass over a serial pass of the same
//     64 shards (reported against std::thread::hardware_concurrency(),
//     since a 1-core container honestly yields ~1.0x);
//   * zero determinism-audit diffs: every shard re-executed serially after
//     the pooled pass digests byte-identically;
//   * the serial and pooled passes' deterministic reports are the same
//     bytes — worker count is not observable in any simulated result.
#include <thread>

#include "bench_util.h"
#include "detect/dedup_detector.h"
#include "driver/vm_runner.h"
#include "fault/injector.h"
#include "fleet/fleet.h"
#include "vmm/migration.h"
#include "workloads/filebench.h"

namespace {

using csk::bench::Table;
using namespace csk;

constexpr std::size_t kShards = 64;
constexpr int kPoolWorkers = 8;
constexpr std::uint64_t kRootSeed = 0xF1EE75EEDull;

vmm::World::HostConfig sweep_host_config() {
  vmm::World::HostConfig cfg;
  cfg.name = "host0";
  cfg.boot_touched_mib = 8;
  cfg.ksm.pages_per_scan = 4000;
  cfg.ksm.scan_interval = SimDuration::millis(10);
  return cfg;
}

vmm::MachineConfig sweep_vm_config(const std::string& name,
                                   std::uint64_t memory_mb) {
  vmm::MachineConfig cfg;
  cfg.name = name;
  cfg.memory_mb = memory_mb;
  cfg.vcpus = 1;
  cfg.drives.push_back({name + ".qcow2", "qcow2", 20480});
  cfg.netdevs.emplace_back();
  return cfg;
}

/// Family A (every 3rd shard): one L0-L0 installation migration of a small
/// VM under seeded packet loss, with the recovery layer armed.
fleet::ShardOutcome migration_cell(const fleet::ShardContext& ctx) {
  fleet::ShardOutcome out;
  Rng rng(ctx.seed);
  vmm::World world(derive_seed(ctx.seed, 1));
  auto host_cfg = sweep_host_config();
  host_cfg.ksm_enabled = false;
  vmm::Host* host = world.make_host(host_cfg);
  vmm::VirtualMachine* source =
      host->launch_vm(sweep_vm_config("src", 64), /*boot_touched_mib=*/16)
          .value();
  auto dest_cfg = sweep_vm_config("dst", 64);
  dest_cfg.incoming_port = 4444;
  (void)host->launch_vm(dest_cfg).value();

  fault::FaultPlan plan;
  plan.seed = derive_seed(ctx.seed, 2);
  plan.net.push_back({"", "", SimDuration::zero(), SimDuration::seconds(600),
                      0.02 + 0.08 * rng.uniform01()});
  vmm::MigrationConfig cfg;
  cfg.retry.max_attempts = 3;
  cfg.retry.initial_backoff = SimDuration::millis(200);
  cfg.chunk_timeout = SimDuration::seconds(2);
  vmm::MigrationJob job(&world, source,
                        net::NetAddr{host->node_name(), Port(4444)}, cfg);
  fault::Injector injector(&world, plan);
  injector.attach_migration(&job);
  injector.arm();
  job.start();
  const SimTime deadline = world.simulator().now() + SimDuration::seconds(3600);
  while (!job.done() && world.simulator().now() < deadline) {
    if (!world.simulator().step()) break;
  }
  out.faults = injector.log();
  if (!job.done() || !job.stats().succeeded) {
    out.status = unavailable("migration did not succeed: " + job.stats().error);
    return out;
  }
  out.values["mig/total_s"] = job.stats().total_time.seconds_f();
  out.values["mig/downtime_ms"] = job.stats().downtime.millis_f();
  out.values["mig/retransmits"] =
      static_cast<double>(job.stats().chunk_retransmits);
  return out;
}

/// Family B: the dedup detection protocol against an ordinary (clean)
/// guest; the sweep checks the verdict stays CLEAN across seeds.
fleet::ShardOutcome detection_cell(const fleet::ShardContext& ctx) {
  fleet::ShardOutcome out;
  Rng rng(ctx.seed);
  vmm::World world(derive_seed(ctx.seed, 1));
  vmm::Host* host = world.make_host(sweep_host_config());
  vmm::VirtualMachine* vm =
      host->launch_vm(sweep_vm_config("victim", 64), /*boot_touched_mib=*/16)
          .value();
  detect::DedupDetectorConfig cfg;
  cfg.file_pages = 12 + rng.uniform(12);
  cfg.merge_wait = SimDuration::seconds(5);
  detect::DedupDetector detector(host, cfg);
  if (Status st = detector.seed_guest(vm->os()); !st.is_ok()) {
    out.status = st;
    return out;
  }
  auto report = detector.run(vm->os());
  if (!report.is_ok()) {
    out.status = report.status();
    return out;
  }
  out.values["det/clean"] =
      report->verdict == detect::DedupVerdict::kNoNestedVm ? 1.0 : 0.0;
  out.values["det/protocol_s"] = world.simulator().now().seconds_f();
  return out;
}

/// Family C: a filebench run on a plain guest plus a ksmd settle window.
fleet::ShardOutcome workload_cell(const fleet::ShardContext& ctx) {
  fleet::ShardOutcome out;
  Rng rng(ctx.seed);
  vmm::World world(derive_seed(ctx.seed, 1));
  vmm::Host* host = world.make_host(sweep_host_config());
  vmm::VirtualMachine* vm =
      host->launch_vm(sweep_vm_config("fb", 64)).value();
  workloads::FilebenchWorkload::Params params;
  params.iterations = 2000 + static_cast<int>(rng.uniform(2000));
  const workloads::FilebenchWorkload fb(params);
  const SimDuration elapsed = driver::run_workload(*vm, fb);
  world.simulator().run_for(SimDuration::seconds(2));
  out.values["fb/elapsed_s"] = elapsed.seconds_f();
  out.values["fb/events"] = static_cast<double>(world.simulator().dispatched());
  return out;
}

fleet::FleetRunner make_sweep(int workers, bool audit) {
  fleet::FleetConfig cfg;
  cfg.workers = workers;
  cfg.root_seed = kRootSeed;
  cfg.audit = audit;
  fleet::FleetRunner fleet(cfg);
  for (std::size_t i = 0; i < kShards; ++i) {
    switch (i % 3) {
      case 0:
        fleet.add("mig-" + std::to_string(i), migration_cell);
        break;
      case 1:
        fleet.add("det-" + std::to_string(i), detection_cell);
        break;
      default:
        fleet.add("fb-" + std::to_string(i), workload_cell);
        break;
    }
  }
  return fleet;
}

struct SweepResults {
  fleet::FleetReport serial;  // workers=1, the baseline
  fleet::FleetReport pooled;  // workers=kPoolWorkers, audited
};

SweepResults& results() {
  static SweepResults* cached = [] {
    auto* r = new SweepResults();
    r->serial = make_sweep(/*workers=*/1, /*audit=*/false).run();
    r->pooled = make_sweep(kPoolWorkers, /*audit=*/true).run();
    return r;
  }();
  return *cached;
}

double speedup() {
  const auto& r = results();
  return static_cast<double>(r.serial.wall_ns) /
         static_cast<double>(r.pooled.wall_ns);
}

void BM_Fleet_Sweep(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(results());
  }
  const auto& r = results();
  state.counters["shards"] = static_cast<double>(kShards);
  state.counters["workers"] = static_cast<double>(r.pooled.workers);
  state.counters["speedup"] = speedup();
  state.counters["steals"] = static_cast<double>(r.pooled.steals);
  state.counters["audit_diffs"] =
      static_cast<double>(r.pooled.audit_diffs.size());
  state.counters["failed_shards"] =
      static_cast<double>(r.pooled.failed_shards());
  state.SetLabel("64-shard mixed sweep");
}
BENCHMARK(BM_Fleet_Sweep)->Iterations(1);

void print_tables() {
  const auto& r = results();
  const unsigned hw = std::thread::hardware_concurrency();

  Table table("Fleet sweep — 64 mixed cells, serial vs pooled");
  table.columns({"KPI", "n", "mean", "p50", "p95", "max"});
  for (const auto& [key, s] : r.pooled.aggregates) {
    table.row({key, std::to_string(s.count), format_fixed(s.mean, 3),
               format_fixed(s.p50, 3), format_fixed(s.p95, 3),
               format_fixed(s.max, 3)});
  }
  table.note("serial wall " + format_fixed(r.serial.wall_ns / 1e9, 2) +
             " s, pooled wall " + format_fixed(r.pooled.wall_ns / 1e9, 2) +
             " s at " + std::to_string(r.pooled.workers) + " workers => " +
             format_fixed(speedup(), 2) + "x (hardware_concurrency=" +
             std::to_string(hw) + "; near-1x is expected on 1 core)");
  table.note("determinism audit: every shard re-executed serially, " +
             std::to_string(r.pooled.audit_diffs.size()) + " digest diffs");
  table.print();

  // Machine-checkable witnesses. Parallelism must never change a simulated
  // result: the audit found no diffs, the serial and pooled passes agree
  // byte-for-byte, and every shard finished.
  CSK_CHECK(r.pooled.audited && r.pooled.audit_diffs.empty());
  CSK_CHECK(r.serial.deterministic_json() == r.pooled.deterministic_json());
  CSK_CHECK(r.pooled.failed_shards() == 0);

  auto& rep = csk::bench::report();
  rep.add("sweep/shards", static_cast<double>(kShards))
      .add("sweep/workers", static_cast<double>(r.pooled.workers))
      .add("sweep/serial_wall_s", r.serial.wall_ns / 1e9, "s")
      .add("sweep/pooled_wall_s", r.pooled.wall_ns / 1e9, "s")
      .add("sweep/audit_wall_s", r.pooled.audit_wall_ns / 1e9, "s")
      .add("sweep/speedup", speedup(), "x")
      .add("sweep/steals", static_cast<double>(r.pooled.steals))
      .add("sweep/audit_diffs", static_cast<double>(r.pooled.audit_diffs.size()))
      .add("sweep/failed_shards", static_cast<double>(r.pooled.failed_shards()))
      .add("sweep/hardware_concurrency", static_cast<double>(hw));
  for (const auto& [key, s] : r.pooled.aggregates) {
    rep.add("sweep/" + key + "/p50", s.p50)
        .add("sweep/" + key + "/p95", s.p95);
  }
  rep.note("no published counterpart: this sweep characterizes the fleet "
           "runner, not a paper figure")
      .note("speedup is wall-clock serial/pooled for the same 64 shards; "
            "meaningful only when hardware_concurrency > 1")
      .note("audit_diffs == 0 is the determinism witness: pooled and serial "
            "executions of every shard digest byte-identically");
}

}  // namespace

int main(int argc, char** argv) {
  return csk::bench::bench_main(argc, argv, print_tables);
}
