// Regenerates Table III: lmbench process/IPC latencies (µs) at L0/L1/L2 —
// where the Turtles exit multiplication shows its teeth (pipe latency 3.49
// -> 65.49 µs, fork 74.6 -> 242 µs).
#include "bench_util.h"
#include "workloads/lmbench.h"

namespace {

using csk::bench::Table;
using csk::hv::ExecEnv;
using csk::hv::Layer;
using csk::hv::TimingModel;
using csk::workloads::LmbenchSuite;

struct TableIIIResults {
  std::vector<csk::workloads::LmbenchProcResult> rows[3];
};

const TableIIIResults& results() {
  static const TableIIIResults cached = [] {
    TableIIIResults r;
    const TimingModel model;
    const LmbenchSuite suite;
    for (int layer = 0; layer < 3; ++layer) {
      r.rows[layer] =
          suite.run_proc(ExecEnv{static_cast<Layer>(layer), &model, false});
    }
    return r;
  }();
  return cached;
}

void BM_TableIII_Proc(benchmark::State& state) {
  const int layer = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(results());
  }
  for (const auto& row : results().rows[layer]) {
    state.counters[row.op + "_us"] = row.us;
  }
  state.SetLabel(csk::hv::layer_name(static_cast<Layer>(layer)));
}
BENCHMARK(BM_TableIII_Proc)->DenseRange(0, 2)->Iterations(1);

void print_tables() {
  const TableIIIResults& r = results();
  Table table("Table III — lmbench processes, times in µs");
  std::vector<std::string> headers{"Config"};
  for (const auto& row : r.rows[0]) headers.push_back(row.op);
  table.columns(headers);
  for (int layer = 0; layer < 3; ++layer) {
    std::vector<std::string> cells{
        csk::hv::layer_name(static_cast<Layer>(layer))};
    for (const auto& row : r.rows[layer]) {
      cells.push_back(csk::format_fixed(row.us, row.us < 1 ? 3 : 2));
    }
    table.row(cells);
  }
  table.note("paper L2 row: 0.10 / 0.60 / 0.32 / 65.49 / 43.98 / 242.19 / "
             "588.50 / 1826.00 — fork and IPC pay the nested exit "
             "multiplication; arithmetic (Table II) does not");
  table.print();

  const double paper_l2_us[] = {0.10,  0.60,   0.32,   65.49,
                                43.98, 242.19, 588.50, 1826.00};
  for (std::size_t i = 0; i < r.rows[2].size(); ++i) {
    const auto& row = r.rows[2][i];
    if (i < std::size(paper_l2_us)) {
      csk::bench::report().add_paper("L2/" + std::string(row.op) + "_us",
                                     row.us, paper_l2_us[i], "us");
    } else {
      csk::bench::report().add("L2/" + std::string(row.op) + "_us", row.us,
                               "us");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  return csk::bench::bench_main(argc, argv, print_tables);
}
