// Ablation A3 — pre-copy vs post-copy installation (§II-A: "The rootkit
// technique we present applies to both migration approaches").
//
// Post-copy moves execution first and streams RAM in the background, so
// the installation time stops depending on the victim's dirty rate — the
// kernel-compile victim that costs ~14 minutes of pre-copy drops to the
// flat background-copy time.
//
// CSK_ABLATION_POSTCOPY_DEMAND=1 appends a demand-paging ablation: the same
// L0-L1 post-copy installation with the remote-fault plane armed, swept
// across the three prefetch policies. Off by default so the published
// BENCH_ablation_postcopy.json stays bit-identical.
#include <cstdlib>
#include <functional>
#include <memory>

#include "bench_util.h"
#include "net/port_forward.h"
#include "vmm/migration.h"
#include "workloads/filebench.h"
#include "workloads/kernel_compile.h"
#include "workloads/workload.h"

namespace {

using csk::bench::Table;
using namespace csk;
using namespace csk::vmm;

struct Cell {
  MigrationStats stats;
};

std::unique_ptr<workloads::Workload> make_workload(const std::string& name) {
  if (name == "idle") return std::make_unique<workloads::IdleWorkload>();
  if (name == "kernel-compile") {
    return std::make_unique<workloads::KernelCompileWorkload>();
  }
  return std::make_unique<workloads::FilebenchWorkload>();
}

bool demand_ablation() {
  const char* v = std::getenv("CSK_ABLATION_POSTCOPY_DEMAND");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

Cell run(const std::string& workload_name, bool post_copy,
         PostCopyPrefetch prefetch = PostCopyPrefetch::kNone,
         bool demand_paging = false) {
  World world;
  auto host_cfg = bench::paper_host_config();
  host_cfg.ksm_enabled = false;
  Host* host = world.make_host(host_cfg);
  VirtualMachine* source = host->launch_vm(bench::paper_vm_config()).value();
  auto workload = make_workload(workload_name);
  source->set_dirty_page_source([wl = workload.get()](SimDuration elapsed) {
    return wl->dirty_rate(elapsed);
  });

  // Nested destination behind the AAAA->BBBB relay, as in the attack.
  auto rk_cfg = bench::paper_vm_config("guestX");
  rk_cfg.cpu_host_passthrough = true;
  rk_cfg.monitor.telnet_port = 5556;
  rk_cfg.netdevs[0].hostfwd.clear();
  VirtualMachine* rootkit = host->launch_vm(rk_cfg, 96).value();
  CSK_CHECK(rootkit->enable_nested_hypervisor().is_ok());
  auto nested_cfg = bench::paper_vm_config("guest0");
  nested_cfg.monitor.telnet_port = 0;
  nested_cfg.netdevs[0].hostfwd = {{22, 22}};
  nested_cfg.incoming_port = 4445;
  CSK_CHECK(rootkit->launch_nested_vm(nested_cfg).is_ok());
  net::NetAddr target{host->node_name(), Port(4444)};
  net::PortForwarder relay(&world.network(), target,
                           net::NetAddr{rootkit->node_name(), Port(4445)});
  CSK_CHECK(relay.start().is_ok());

  MigrationConfig cfg;
  cfg.post_copy = post_copy;
  cfg.postcopy_demand_paging = demand_paging;
  cfg.postcopy_prefetch = prefetch;
  cfg.postcopy_prefetch_window = 16;
  if (demand_paging) {
    // Keep the stream under the nested receive gate (~20 MiB/s): with the
    // default 32 MiB/s bucket the AAAA->BBBB hop builds an ever-growing
    // queue and every fault-service chunk sits behind it for seconds. At
    // 16 MiB/s the relay stays drained and service is RTT-bound.
    cfg.bandwidth_limit_bytes_per_sec = 16.0 * 1024 * 1024;
  }
  MigrationJob job(&world, source, target, cfg);

  // Demand ablation: a deterministic mostly-sequential guest access stream
  // on the landed destination, the pattern readahead exists to absorb —
  // prefetched pages land well inside the 125 ms touch cadence.
  Rng touch_rng(0xAB1A7E);
  const std::uint64_t pages = bench::paper_vm_config().memory_pages();
  std::uint64_t walk = 0;
  int touches_left = demand_paging ? 160 : 0;
  std::function<void()> touch = [&] {
    if (touches_left <= 0 || job.done()) return;
    --touches_left;
    if (touches_left % 16 == 0) walk = touch_rng.uniform(pages);
    job.postcopy_touch(Gfn(walk++ % pages));
    world.simulator().schedule_after(SimDuration::millis(125), touch);
  };
  if (demand_paging) {
    world.simulator().schedule_after(SimDuration::seconds(1), touch);
  }

  job.start();
  const SimTime deadline = world.simulator().now() + SimDuration::seconds(3600);
  while (!job.done() && world.simulator().now() < deadline) {
    if (!world.simulator().step()) break;
  }
  CSK_CHECK_MSG(job.done() && job.stats().succeeded,
                "ablation cell failed: " + job.stats().error);
  return Cell{job.stats()};
}

const char* kWorkloads[3] = {"idle", "kernel-compile", "filebench"};

constexpr PostCopyPrefetch kPolicies[3] = {PostCopyPrefetch::kNone,
                                           PostCopyPrefetch::kLinear,
                                           PostCopyPrefetch::kLocality};

struct Results {
  Cell pre[3];
  Cell post[3];
  // CSK_ABLATION_POSTCOPY_DEMAND=1 only: idle workload, demand plane armed,
  // one cell per prefetch policy.
  Cell demand[3];
};

const Results& results() {
  static const Results cached = [] {
    Results r;
    for (int w = 0; w < 3; ++w) {
      r.pre[w] = run(kWorkloads[w], false);
      r.post[w] = run(kWorkloads[w], true);
    }
    if (demand_ablation()) {
      for (int p = 0; p < 3; ++p) {
        r.demand[p] = run("idle", true, kPolicies[p], /*demand_paging=*/true);
      }
      // Readahead must absorb most of the sequential stream's faults.
      CSK_CHECK(r.demand[1].stats.remote_faults <
                r.demand[0].stats.remote_faults);
    }
    return r;
  }();
  return cached;
}

void BM_PrePostCopy(benchmark::State& state) {
  const int w = static_cast<int>(state.range(0));
  const bool post = state.range(1) == 1;
  for (auto _ : state) benchmark::DoNotOptimize(results());
  const MigrationStats& s =
      post ? results().post[w].stats : results().pre[w].stats;
  state.counters["end_to_end_s_sim"] = s.total_time.seconds_f();
  state.counters["downtime_ms_sim"] = s.downtime.millis_f();
  state.SetLabel(std::string(kWorkloads[w]) + (post ? "/post" : "/pre"));
}
BENCHMARK(BM_PrePostCopy)->ArgsProduct({{0, 1, 2}, {0, 1}})->Iterations(1);

void print_tables() {
  const Results& r = results();
  Table table("Ablation A3 — pre-copy vs post-copy installation migration "
              "(nested destination)");
  table.columns({"Workload", "pre-copy e2e (s)", "post-copy e2e (s)",
                 "pre downtime", "post downtime"});
  for (int w = 0; w < 3; ++w) {
    table.row({kWorkloads[w],
               csk::format_fixed(r.pre[w].stats.total_time.seconds_f(), 1),
               csk::format_fixed(r.post[w].stats.total_time.seconds_f(), 1),
               r.pre[w].stats.downtime.to_string(),
               r.post[w].stats.downtime.to_string()});
  }
  table.note("post-copy decouples installation time from the victim's "
             "dirty rate: the CPU/memory-intensive victim no longer takes "
             "~14 minutes to kidnap — at the price of a fixed blackout and "
             "remote-fault exposure");
  table.print();

  for (int w = 0; w < 3; ++w) {
    const std::string wl = kWorkloads[w];
    csk::bench::report()
        .add(wl + "/pre_copy_e2e_s", r.pre[w].stats.total_time.seconds_f(),
             "s")
        .add(wl + "/post_copy_e2e_s", r.post[w].stats.total_time.seconds_f(),
             "s")
        .add(wl + "/pre_copy_downtime_ms", r.pre[w].stats.downtime.millis_f(),
             "ms")
        .add(wl + "/post_copy_downtime_ms",
             r.post[w].stats.downtime.millis_f(), "ms");
  }

  if (demand_ablation()) {
    Table dt("Demand-paging ablation — L0-L1 post-copy with the "
             "remote-fault plane armed (idle victim)");
    dt.columns({"prefetch", "e2e (s)", "faults", "served", "prefetched",
                "p50 ms", "p95 ms", "max ms"});
    for (int p = 0; p < 3; ++p) {
      const MigrationStats& s = r.demand[p].stats;
      dt.row({postcopy_prefetch_name(kPolicies[p]),
              csk::format_fixed(s.total_time.seconds_f(), 1),
              std::to_string(s.remote_faults),
              std::to_string(s.remote_faults_served),
              std::to_string(s.prefetch_pages),
              csk::format_fixed(s.remote_fault_summary.p50, 2),
              csk::format_fixed(s.remote_fault_summary.p95, 2),
              csk::format_fixed(s.remote_fault_summary.max, 2)});
    }
    dt.note("every remote fault crosses the AAAA->BBBB relay back to the "
            "source; see bench_postcopy_faults for the fault-onset sweep");
    dt.print();
    for (int p = 0; p < 3; ++p) {
      const MigrationStats& s = r.demand[p].stats;
      const std::string n =
          std::string("demand-") + postcopy_prefetch_name(kPolicies[p]);
      csk::bench::report()
          .add(n + "/e2e_s", s.total_time.seconds_f(), "s")
          .add(n + "/remote_faults", static_cast<double>(s.remote_faults))
          .add(n + "/prefetch_pages", static_cast<double>(s.prefetch_pages))
          .add(n + "/fault_p95_ms", s.remote_fault_summary.p95, "ms");
    }
    csk::bench::report().note(
        "CSK_ABLATION_POSTCOPY_DEMAND=1: demand-paging ablation appended "
        "(absent from the published default report)");
  }
}

}  // namespace

int main(int argc, char** argv) {
  return csk::bench::bench_main(argc, argv, print_tables);
}
