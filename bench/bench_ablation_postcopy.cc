// Ablation A3 — pre-copy vs post-copy installation (§II-A: "The rootkit
// technique we present applies to both migration approaches").
//
// Post-copy moves execution first and streams RAM in the background, so
// the installation time stops depending on the victim's dirty rate — the
// kernel-compile victim that costs ~14 minutes of pre-copy drops to the
// flat background-copy time.
#include <memory>

#include "bench_util.h"
#include "net/port_forward.h"
#include "vmm/migration.h"
#include "workloads/filebench.h"
#include "workloads/kernel_compile.h"
#include "workloads/workload.h"

namespace {

using csk::bench::Table;
using namespace csk;
using namespace csk::vmm;

struct Cell {
  MigrationStats stats;
};

std::unique_ptr<workloads::Workload> make_workload(const std::string& name) {
  if (name == "idle") return std::make_unique<workloads::IdleWorkload>();
  if (name == "kernel-compile") {
    return std::make_unique<workloads::KernelCompileWorkload>();
  }
  return std::make_unique<workloads::FilebenchWorkload>();
}

Cell run(const std::string& workload_name, bool post_copy) {
  World world;
  auto host_cfg = bench::paper_host_config();
  host_cfg.ksm_enabled = false;
  Host* host = world.make_host(host_cfg);
  VirtualMachine* source = host->launch_vm(bench::paper_vm_config()).value();
  auto workload = make_workload(workload_name);
  source->set_dirty_page_source([wl = workload.get()](SimDuration elapsed) {
    return wl->dirty_rate(elapsed);
  });

  // Nested destination behind the AAAA->BBBB relay, as in the attack.
  auto rk_cfg = bench::paper_vm_config("guestX");
  rk_cfg.cpu_host_passthrough = true;
  rk_cfg.monitor.telnet_port = 5556;
  rk_cfg.netdevs[0].hostfwd.clear();
  VirtualMachine* rootkit = host->launch_vm(rk_cfg, 96).value();
  CSK_CHECK(rootkit->enable_nested_hypervisor().is_ok());
  auto nested_cfg = bench::paper_vm_config("guest0");
  nested_cfg.monitor.telnet_port = 0;
  nested_cfg.netdevs[0].hostfwd = {{22, 22}};
  nested_cfg.incoming_port = 4445;
  CSK_CHECK(rootkit->launch_nested_vm(nested_cfg).is_ok());
  net::NetAddr target{host->node_name(), Port(4444)};
  net::PortForwarder relay(&world.network(), target,
                           net::NetAddr{rootkit->node_name(), Port(4445)});
  CSK_CHECK(relay.start().is_ok());

  MigrationConfig cfg;
  cfg.post_copy = post_copy;
  MigrationJob job(&world, source, target, cfg);
  job.start();
  const SimTime deadline = world.simulator().now() + SimDuration::seconds(3600);
  while (!job.done() && world.simulator().now() < deadline) {
    if (!world.simulator().step()) break;
  }
  CSK_CHECK_MSG(job.done() && job.stats().succeeded,
                "ablation cell failed: " + job.stats().error);
  return Cell{job.stats()};
}

const char* kWorkloads[3] = {"idle", "kernel-compile", "filebench"};

struct Results {
  Cell pre[3];
  Cell post[3];
};

const Results& results() {
  static const Results cached = [] {
    Results r;
    for (int w = 0; w < 3; ++w) {
      r.pre[w] = run(kWorkloads[w], false);
      r.post[w] = run(kWorkloads[w], true);
    }
    return r;
  }();
  return cached;
}

void BM_PrePostCopy(benchmark::State& state) {
  const int w = static_cast<int>(state.range(0));
  const bool post = state.range(1) == 1;
  for (auto _ : state) benchmark::DoNotOptimize(results());
  const MigrationStats& s =
      post ? results().post[w].stats : results().pre[w].stats;
  state.counters["end_to_end_s_sim"] = s.total_time.seconds_f();
  state.counters["downtime_ms_sim"] = s.downtime.millis_f();
  state.SetLabel(std::string(kWorkloads[w]) + (post ? "/post" : "/pre"));
}
BENCHMARK(BM_PrePostCopy)->ArgsProduct({{0, 1, 2}, {0, 1}})->Iterations(1);

void print_tables() {
  const Results& r = results();
  Table table("Ablation A3 — pre-copy vs post-copy installation migration "
              "(nested destination)");
  table.columns({"Workload", "pre-copy e2e (s)", "post-copy e2e (s)",
                 "pre downtime", "post downtime"});
  for (int w = 0; w < 3; ++w) {
    table.row({kWorkloads[w],
               csk::format_fixed(r.pre[w].stats.total_time.seconds_f(), 1),
               csk::format_fixed(r.post[w].stats.total_time.seconds_f(), 1),
               r.pre[w].stats.downtime.to_string(),
               r.post[w].stats.downtime.to_string()});
  }
  table.note("post-copy decouples installation time from the victim's "
             "dirty rate: the CPU/memory-intensive victim no longer takes "
             "~14 minutes to kidnap — at the price of a fixed blackout and "
             "remote-fault exposure");
  table.print();

  for (int w = 0; w < 3; ++w) {
    const std::string wl = kWorkloads[w];
    csk::bench::report()
        .add(wl + "/pre_copy_e2e_s", r.pre[w].stats.total_time.seconds_f(),
             "s")
        .add(wl + "/post_copy_e2e_s", r.post[w].stats.total_time.seconds_f(),
             "s")
        .add(wl + "/pre_copy_downtime_ms", r.pre[w].stats.downtime.millis_f(),
             "ms")
        .add(wl + "/post_copy_downtime_ms",
             r.post[w].stats.downtime.millis_f(), "ms");
  }
}

}  // namespace

int main(int argc, char** argv) {
  return csk::bench::bench_main(argc, argv, print_tables);
}
