// Post-copy fault sweep — remote-fault latency and stranded-guest recovery.
//
// §II-A's post-copy variant moves execution before the memory: every guest
// touch of a not-yet-received page becomes a userfaultfd-style remote fault
// that must cross the network back to the source. This bench characterizes
// that demand-paging plane: the remote-fault service-latency distribution
// under each prefetch policy, and — the robustness half — what happens when
// the source vanishes mid-window (link partition or process kill). The
// watchdog must always terminate the job with a typed outcome: clean
// completion, completion from the surviving in-flight set, rollback to a
// re-activated source, or an explicit kDataLoss report. Never a hang.
//
// Two hosts with a real 1 GbE link between them, so "partition the source
// link" severs exactly the migration plane. Every cell is a deterministic
// seeded simulation: two runs produce bit-identical
// BENCH_postcopy_faults.json. CSK_BENCH_TINY=1 shrinks the sweep for the
// CTest smoke run.
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "fault/injector.h"
#include "vmm/migration.h"

namespace {

using csk::bench::Table;
using namespace csk;
using namespace csk::vmm;

bool tiny() {
  const char* v = std::getenv("CSK_BENCH_TINY");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

// Fault modes swept against each prefetch policy. Onsets sit inside the
// post-copy window: handoff lands ~0.6 s in, the throttled background copy
// ends ~6.5 s in (tiny: ~2.5 s).
enum class FaultMode { kClean, kPartitionHeals, kPartitionOpen, kKillSource };

const char* fault_mode_name(FaultMode m) {
  switch (m) {
    case FaultMode::kClean: return "clean";
    case FaultMode::kPartitionHeals: return "partition-heals";
    case FaultMode::kPartitionOpen: return "partition-open";
    case FaultMode::kKillSource: return "source-kill";
  }
  return "?";
}

SimDuration fault_onset(FaultMode m) {
  if (m == FaultMode::kClean) return SimDuration::zero();
  return tiny() ? SimDuration::millis(1200) : SimDuration::seconds(2);
}

constexpr SimDuration kWatchdog = SimDuration::seconds(3);

struct Cell {
  PostCopyPrefetch prefetch = PostCopyPrefetch::kNone;
  FaultMode mode = FaultMode::kClean;
  MigrationStats stats;
  std::uint64_t partition_drops = 0;
};

/// Deterministic guest access pattern on the destination after handoff: a
/// mostly-sequential walk (the shape readahead exists for) with a random
/// jump every 8th touch, one touch per 5 ms.
struct TouchDriver {
  MigrationJob* job = nullptr;
  World* world = nullptr;
  Rng rng{0xF4417};
  std::uint64_t pages = 0;
  std::uint64_t walk = 0;
  int remaining = 0;

  void step() {
    if (remaining <= 0 || job->done()) return;
    --remaining;
    if (remaining % 8 == 0) walk = rng.uniform(pages);
    job->postcopy_touch(Gfn(walk++ % pages));
    world->simulator().schedule_after(SimDuration::millis(5),
                                      [this] { step(); });
  }
};

Cell run_cell(PostCopyPrefetch prefetch, FaultMode mode) {
  World world;
  auto host_cfg = bench::paper_host_config();
  host_cfg.ksm_enabled = false;
  Host* src_host = world.make_host(host_cfg);
  auto host_cfg2 = host_cfg;
  host_cfg2.name = "host1";
  Host* dst_host = world.make_host(host_cfg2);
  net::LinkModel link;  // 1 GbE between the two physical machines
  link.latency = SimDuration::micros(500);
  link.bytes_per_sec = 1.25e8;
  link.per_packet_cpu = SimDuration::micros(10);
  world.network().set_link("host0", "host1", link);

  auto src_cfg = bench::paper_vm_config("guest0");
  src_cfg.memory_mb = tiny() ? 96 : 256;
  VirtualMachine* source =
      src_host->launch_vm(src_cfg, /*boot_touched_mib=*/tiny() ? 32 : 96)
          .value();
  auto dest_cfg = bench::paper_vm_config("guest0-dst");
  dest_cfg.memory_mb = src_cfg.memory_mb;
  dest_cfg.monitor.telnet_port = 0;
  dest_cfg.netdevs[0].hostfwd.clear();
  dest_cfg.incoming_port = 4444;
  (void)dst_host->launch_vm(dest_cfg).value();

  MigrationConfig cfg;
  cfg.post_copy = true;
  cfg.bandwidth_limit_bytes_per_sec = 16.0 * 1024 * 1024;
  cfg.postcopy_demand_paging = true;
  cfg.postcopy_prefetch = prefetch;
  cfg.postcopy_prefetch_window = 16;
  cfg.postcopy_watchdog = kWatchdog;
  MigrationJob job(&world, source,
                   net::NetAddr{dst_host->node_name(), Port(4444)}, cfg);

  fault::FaultPlan plan;
  plan.seed = 7 + static_cast<std::uint64_t>(mode);
  if (mode != FaultMode::kClean) {
    fault::PostCopyFaultSpec spec;
    spec.kind = mode == FaultMode::kKillSource
                    ? fault::PostCopyFaultSpec::Kind::kKillSource
                    : fault::PostCopyFaultSpec::Kind::kPartitionSourceLink;
    spec.at = fault_onset(mode);
    spec.duration = mode == FaultMode::kPartitionHeals
                        ? SimDuration::millis(1500)
                        : SimDuration::zero();
    plan.postcopy.push_back(spec);
  }
  fault::Injector injector(&world, plan);
  injector.attach_migration(&job);
  injector.arm();

  TouchDriver touches;
  touches.job = &job;
  touches.world = &world;
  touches.pages = src_cfg.memory_pages();
  touches.remaining = tiny() ? 120 : 480;
  world.simulator().schedule_after(SimDuration::millis(800),
                                   [&touches] { touches.step(); });

  job.start();
  const SimTime deadline = world.simulator().now() + SimDuration::seconds(600);
  while (!job.done() && world.simulator().now() < deadline) {
    if (!world.simulator().step()) break;
  }

  Cell cell;
  cell.prefetch = prefetch;
  cell.mode = mode;
  cell.stats = job.stats();
  cell.partition_drops = injector.count("postcopy.partition");

  // The engine's whole contract: every cell terminates with a typed
  // outcome inside the watchdog budget — the pre-engine model would sit in
  // this loop for the full 600 simulated seconds on the partition cells.
  const std::string tag = std::string(postcopy_prefetch_name(prefetch)) +
                          "/" + fault_mode_name(mode);
  CSK_CHECK_MSG(cell.stats.completed, "cell " + tag + " stranded");
  switch (mode) {
    case FaultMode::kClean:
      CSK_CHECK_MSG(cell.stats.succeeded, tag + ": " + cell.stats.error);
      CSK_CHECK(cell.stats.postcopy_outcome == PostCopyOutcome::kCompleted);
      CSK_CHECK(cell.stats.remote_faults > 0);
      CSK_CHECK(cell.stats.remote_faults_served == cell.stats.remote_faults);
      break;
    case FaultMode::kPartitionHeals:
      // The severed chunks survive in the in-flight set; the job must end
      // with the full memory image, via salvage or late delivery.
      CSK_CHECK_MSG(cell.stats.succeeded, tag + ": " + cell.stats.error);
      CSK_CHECK(cell.stats.postcopy_outcome == PostCopyOutcome::kCompleted ||
                cell.stats.postcopy_outcome ==
                    PostCopyOutcome::kCompletedFromInflight);
      break;
    case FaultMode::kPartitionOpen:
      // Undiverged destination, reachable source process: recovery, not
      // loss. (Salvage may also complete it outright.)
      CSK_CHECK(cell.stats.postcopy_outcome ==
                    PostCopyOutcome::kRecoveredSourceResume ||
                cell.stats.postcopy_outcome ==
                    PostCopyOutcome::kCompletedFromInflight);
      CSK_CHECK(cell.partition_drops > 0);
      break;
    case FaultMode::kKillSource:
      // A dead source can neither finish nor take the guest back: typed
      // data loss, never a silent half-populated success.
      CSK_CHECK(!cell.stats.succeeded);
      CSK_CHECK(cell.stats.postcopy_outcome == PostCopyOutcome::kDataLoss);
      CSK_CHECK(cell.stats.postcopy_report.code() == StatusCode::kDataLoss);
      break;
  }
  if (mode != FaultMode::kClean) {
    // Termination bound: onset + one watchdog deadline + one re-arm lap.
    const SimDuration bound =
        fault_onset(mode) + kWatchdog * 3.0 + SimDuration::seconds(10);
    CSK_CHECK_MSG(cell.stats.total_time <= bound,
                  tag + " terminated late: " +
                      cell.stats.total_time.to_string());
  }
  return cell;
}

std::vector<PostCopyPrefetch> policies() {
  if (tiny()) return {PostCopyPrefetch::kNone, PostCopyPrefetch::kLinear};
  return {PostCopyPrefetch::kNone, PostCopyPrefetch::kLinear,
          PostCopyPrefetch::kLocality};
}

std::vector<FaultMode> modes() {
  if (tiny()) return {FaultMode::kClean, FaultMode::kKillSource};
  return {FaultMode::kClean, FaultMode::kPartitionHeals,
          FaultMode::kPartitionOpen, FaultMode::kKillSource};
}

const std::vector<Cell>& results() {
  static const std::vector<Cell> cached = [] {
    std::vector<Cell> cells;
    for (PostCopyPrefetch p : policies()) {
      for (FaultMode m : modes()) cells.push_back(run_cell(p, m));
    }
    // Prefetch ablation witness, on the clean cells: linear readahead must
    // measurably shrink the remote-fault tail of the mostly-sequential
    // touch pattern — fewer faults ever reach the network.
    const Cell* none_clean = nullptr;
    const Cell* linear_clean = nullptr;
    for (const Cell& c : cells) {
      if (c.mode != FaultMode::kClean) continue;
      if (c.prefetch == PostCopyPrefetch::kNone) none_clean = &c;
      if (c.prefetch == PostCopyPrefetch::kLinear) linear_clean = &c;
    }
    CSK_CHECK(none_clean != nullptr && linear_clean != nullptr);
    CSK_CHECK(linear_clean->stats.remote_faults <
              none_clean->stats.remote_faults);
    CSK_CHECK(linear_clean->stats.prefetch_pages > 0);
    return cells;
  }();
  return cached;
}

double p99(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  return percentile(samples, 99.0);
}

void BM_PostCopyFaults(benchmark::State& state) {
  const auto idx = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(results());
  // Tiny mode (CSK_BENCH_TINY) runs fewer cells than the registered range.
  if (idx >= results().size()) return;
  const Cell& c = results()[idx];
  state.counters["total_s_sim"] = c.stats.total_time.seconds_f();
  state.counters["remote_faults"] = static_cast<double>(c.stats.remote_faults);
  state.counters["fault_p95_ms"] = c.stats.remote_fault_summary.p95;
  state.counters["outcome"] =
      static_cast<double>(static_cast<int>(c.stats.postcopy_outcome));
  state.SetLabel(std::string(postcopy_prefetch_name(c.prefetch)) + "/" +
                 fault_mode_name(c.mode));
}
BENCHMARK(BM_PostCopyFaults)->DenseRange(0, 11)->Iterations(1);

void print_tables() {
  const auto& cells = results();
  Table table("Post-copy fault sweep — remote-fault latency and recovery "
              "outcomes (prefetch x fault)");
  table.columns({"prefetch/fault", "outcome", "total (s)", "faults",
                 "served", "prefetched", "salvaged", "p50 ms", "p95 ms",
                 "p99 ms", "max ms"});
  for (const Cell& c : cells) {
    const auto& s = c.stats.remote_fault_summary;
    table.row({std::string(postcopy_prefetch_name(c.prefetch)) + "/" +
                   fault_mode_name(c.mode),
               postcopy_outcome_name(c.stats.postcopy_outcome),
               csk::format_fixed(c.stats.total_time.seconds_f(), 2),
               std::to_string(c.stats.remote_faults),
               std::to_string(c.stats.remote_faults_served),
               std::to_string(c.stats.prefetch_pages),
               std::to_string(c.stats.inflight_pages_salvaged),
               csk::format_fixed(s.p50, 2), csk::format_fixed(s.p95, 2),
               csk::format_fixed(p99(c.stats.remote_fault_latency_ms), 2),
               csk::format_fixed(s.max, 2)});
  }
  table.note("every faulted cell terminates with a typed outcome within "
             "onset + 3 watchdog deadlines — the pre-engine model strands "
             "forever on the partition cells (CSK_CHECKed)");
  table.note("linear readahead serves the sequential walk before it "
             "faults: fewer remote faults than prefetch=none on the clean "
             "cell (CSK_CHECKed)");
  table.print();

  for (const Cell& c : cells) {
    const std::string n = std::string(postcopy_prefetch_name(c.prefetch)) +
                          "-" + fault_mode_name(c.mode);
    const auto& s = c.stats.remote_fault_summary;
    csk::bench::report()
        .add(n + "/total_s", c.stats.total_time.seconds_f(), "s")
        .add(n + "/outcome",
             static_cast<double>(static_cast<int>(c.stats.postcopy_outcome)))
        .add(n + "/succeeded", c.stats.succeeded ? 1.0 : 0.0)
        .add(n + "/remote_faults", static_cast<double>(c.stats.remote_faults))
        .add(n + "/remote_faults_served",
             static_cast<double>(c.stats.remote_faults_served))
        .add(n + "/prefetch_pages",
             static_cast<double>(c.stats.prefetch_pages))
        .add(n + "/inflight_pages_salvaged",
             static_cast<double>(c.stats.inflight_pages_salvaged))
        .add(n + "/fault_p50_ms", s.p50, "ms")
        .add(n + "/fault_p95_ms", s.p95, "ms")
        .add(n + "/fault_p99_ms", p99(c.stats.remote_fault_latency_ms), "ms")
        .add(n + "/fault_max_ms", s.max, "ms");
  }
  csk::bench::report()
      .note("outcome codes: 0 none, 1 completed, 2 completed-from-inflight, "
            "3 recovered-source-resume, 4 data-loss")
      .note("no published counterpart: this sweep characterizes the "
            "simulator's post-copy demand-paging plane, not a paper figure")
      .note(tiny() ? "CSK_BENCH_TINY=1: smoke-sized sweep"
                   : "full sweep: 3 prefetch policies x 4 fault modes");
}

}  // namespace

int main(int argc, char** argv) {
  return csk::bench::bench_main(argc, argv, print_tables);
}
