// Regenerates Figures 5 and 6: the memory-deduplication detector's
// per-page write times t0 / t1 / t2, without (Fig 5) and with (Fig 6) a
// nested-VM rootkit, at paper scale (File-A = 100 pages, 1 GiB guests).
#include <memory>

#include "bench_util.h"
#include "cloudskulk/installer.h"
#include "detect/dedup_detector.h"

namespace {

using csk::bench::Table;
using namespace csk;
using namespace csk::detect;

struct Scenario {
  DedupDetectionReport report;
};

DedupDetectorConfig detector_config() {
  DedupDetectorConfig cfg;
  cfg.file_pages = 100;  // 400 KiB, as in §VI-B
  cfg.merge_wait = SimDuration::seconds(60);
  return cfg;
}

Scenario run_clean() {
  vmm::World world;
  vmm::Host* host = world.make_host(bench::paper_host_config());
  vmm::VirtualMachine* guest0 =
      host->launch_vm_cmdline(bench::paper_vm_config().to_command_line())
          .value();
  DedupDetector detector(host, detector_config());
  CSK_CHECK(detector.seed_guest(guest0->os()).is_ok());
  auto report = detector.run(guest0->os());
  CSK_CHECK_MSG(report.is_ok(), report.status().to_string());
  return Scenario{std::move(report).take()};
}

Scenario run_rootkit() {
  vmm::World world;
  vmm::Host* host = world.make_host(bench::paper_host_config());
  (void)host->launch_vm_cmdline(bench::paper_vm_config().to_command_line())
      .value();
  cloudskulk::InstallerOptions opts;
  cloudskulk::CloudSkulkInstaller installer(host, opts);
  const cloudskulk::InstallReport install = installer.install();
  CSK_CHECK_MSG(install.succeeded, install.error);

  DedupDetector detector(host, detector_config());
  // The vendor's web interface pushes File-A to "the user's VM" — which now
  // lives nested; the impersonating L1 mirrors everything the guest should
  // hold (§VI-D2).
  CSK_CHECK(detector.seed_guest(installer.nested_vm()->os()).is_ok());
  CSK_CHECK(detector.seed_guest(installer.rootkit_vm()->os()).is_ok());
  auto report = detector.run(installer.nested_vm()->os());
  CSK_CHECK_MSG(report.is_ok(), report.status().to_string());
  return Scenario{std::move(report).take()};
}

const Scenario& clean() {
  static const Scenario s = run_clean();
  return s;
}
const Scenario& rootkit() {
  static const Scenario s = run_rootkit();
  return s;
}

void set_counters(benchmark::State& state, const DedupDetectionReport& r) {
  state.counters["t0_mean_us"] = r.t0.summary.mean;
  state.counters["t1_mean_us"] = r.t1.summary.mean;
  state.counters["t2_mean_us"] = r.t2.summary.mean;
  state.counters["t1_vs_t0"] = r.t1.summary.mean / r.t0.summary.mean;
  state.counters["t2_vs_t0"] = r.t2.summary.mean / r.t0.summary.mean;
  state.counters["detected"] =
      r.verdict == DedupVerdict::kNestedVmDetected ? 1 : 0;
}

void BM_Fig5_NoNestedVm(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(clean());
  set_counters(state, clean().report);
  state.SetLabel(dedup_verdict_name(clean().report.verdict));
}
BENCHMARK(BM_Fig5_NoNestedVm)->Iterations(1);

void BM_Fig6_WithNestedVm(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(rootkit());
  set_counters(state, rootkit().report);
  state.SetLabel(dedup_verdict_name(rootkit().report.verdict));
}
BENCHMARK(BM_Fig6_WithNestedVm)->Iterations(1);

void print_series(const char* name, const PageTimings& t) {
  std::printf("  %-3s mean %7.2f us  stddev %6.2f  min %6.2f  p50 %6.2f  "
              "max %7.2f   first pages:",
              name, t.summary.mean, t.summary.stddev, t.summary.min,
              t.summary.p50, t.summary.max);
  for (std::size_t i = 0; i < t.us.size() && i < 10; ++i) {
    std::printf(" %.2f", t.us[i]);
  }
  std::printf(" ...\n");
}

void print_scenario(const char* title, const DedupDetectionReport& r,
                    const char* paper_shape) {
  std::printf("\n=== %s ===\n", title);
  print_series("t0", r.t0);
  print_series("t1", r.t1);
  print_series("t2", r.t2);
  std::printf("  step1 merged: %s   step2 merged: %s   t1/t2 separation: "
              "%.1f sd\n",
              r.step1_merged ? "yes" : "no", r.step2_merged ? "yes" : "no",
              r.t1_t2_separation);
  std::printf("  verdict: %s\n  %s\n  paper shape: %s\n",
              dedup_verdict_name(r.verdict), r.explanation.c_str(),
              paper_shape);
}

void print_tables() {
  print_scenario("Figure 5 — t0, t1, t2 with NO nested virtual machine",
                 clean().report,
                 "t1 >> t2 ~ t0 (merge broken by the guest's change)");
  print_scenario("Figure 6 — t0, t1, t2 WITH a nested virtual machine",
                 rootkit().report,
                 "t1 ~ t2 >> t0 (the stale L1 copy keeps merging)");
  std::printf("\n");

  const DedupDetectionReport& c = clean().report;
  const DedupDetectionReport& k = rootkit().report;
  csk::bench::report()
      .add("fig5_clean/t0_mean_us", c.t0.summary.mean, "us")
      .add("fig5_clean/t1_mean_us", c.t1.summary.mean, "us")
      .add("fig5_clean/t2_mean_us", c.t2.summary.mean, "us")
      .add("fig5_clean/verdict_is_no_nested_vm",
           c.verdict == DedupVerdict::kNoNestedVm ? 1 : 0)
      .add("fig6_rootkit/t0_mean_us", k.t0.summary.mean, "us")
      .add("fig6_rootkit/t1_mean_us", k.t1.summary.mean, "us")
      .add("fig6_rootkit/t2_mean_us", k.t2.summary.mean, "us")
      .add("fig6_rootkit/verdict_is_nested_vm_detected",
           k.verdict == DedupVerdict::kNestedVmDetected ? 1 : 0)
      .note("paper prints Fig 5/6 as per-page scatter plots without "
            "numeric labels; the qualitative shape (t1>>t2~t0 clean, "
            "t1~t2>>t0 rooted) is what reproduces");
}

}  // namespace

int main(int argc, char** argv) {
  return csk::bench::bench_main(argc, argv, print_tables);
}
