// Ablation A1 — detection vs File-A size.
//
// §VI-D argues defenders "can just use one or few pages"; this sweep runs
// the full two-step protocol with File-A from 1 page to the paper's 100
// pages, in both scenarios, and checks the verdict never degrades.
#include "bench_util.h"
#include "cloudskulk/installer.h"
#include "detect/dedup_detector.h"

namespace {

using csk::bench::Table;
using namespace csk;
using namespace csk::detect;

constexpr std::size_t kSizes[] = {1, 2, 4, 8, 16, 32, 64, 100};

struct Cell {
  DedupDetectionReport report;
};

vmm::World::HostConfig small_paper_host() {
  auto cfg = bench::paper_host_config();
  cfg.boot_touched_mib = 24;  // reduced scale: the protocol is size-local
  return cfg;
}

vmm::MachineConfig small_paper_vm(const std::string& name = "guest0") {
  auto cfg = bench::paper_vm_config(name);
  cfg.memory_mb = 128;
  return cfg;
}

DedupDetectorConfig cfg_for(std::size_t pages) {
  DedupDetectorConfig cfg;
  cfg.file_pages = pages;
  cfg.merge_wait = SimDuration::seconds(10);
  return cfg;
}

Cell run(std::size_t pages, bool with_rootkit) {
  vmm::World world;
  vmm::Host* host = world.make_host(small_paper_host());
  (void)host->launch_vm_cmdline(small_paper_vm().to_command_line()).value();
  DedupDetector detector(host, cfg_for(pages));
  guestos::GuestOS* victim = nullptr;
  std::unique_ptr<cloudskulk::CloudSkulkInstaller> installer;
  if (with_rootkit) {
    cloudskulk::InstallerOptions opts;
    opts.rootkit_boot_touched_mib = 16;
    installer = std::make_unique<cloudskulk::CloudSkulkInstaller>(host, opts);
    CSK_CHECK(installer->install().succeeded);
    victim = installer->nested_vm()->os();
    CSK_CHECK(detector.seed_guest(installer->rootkit_vm()->os()).is_ok());
  } else {
    victim = host->find_vm_by_name("guest0").value()->os();
  }
  CSK_CHECK(detector.seed_guest(victim).is_ok());
  auto report = detector.run(victim);
  CSK_CHECK_MSG(report.is_ok(), report.status().to_string());
  return Cell{std::move(report).take()};
}

struct Results {
  Cell clean[std::size(kSizes)];
  Cell rooted[std::size(kSizes)];
};

const Results& results() {
  static const Results cached = [] {
    Results r;
    for (std::size_t i = 0; i < std::size(kSizes); ++i) {
      r.clean[i] = run(kSizes[i], false);
      r.rooted[i] = run(kSizes[i], true);
    }
    return r;
  }();
  return cached;
}

void BM_DetectPagesSweep(benchmark::State& state) {
  const auto idx = static_cast<std::size_t>(state.range(0));
  const bool rooted = state.range(1) == 1;
  for (auto _ : state) benchmark::DoNotOptimize(results());
  const DedupDetectionReport& r =
      rooted ? results().rooted[idx].report : results().clean[idx].report;
  state.counters["pages"] = static_cast<double>(kSizes[idx]);
  state.counters["t1_vs_t0"] = r.t1.summary.mean / r.t0.summary.mean;
  state.counters["correct"] =
      r.verdict == (rooted ? DedupVerdict::kNestedVmDetected
                           : DedupVerdict::kNoNestedVm)
          ? 1
          : 0;
  state.SetLabel(std::string(rooted ? "rootkit/" : "clean/") +
                 std::to_string(kSizes[idx]) + "p");
}
BENCHMARK(BM_DetectPagesSweep)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5, 6, 7}, {0, 1}})
    ->Iterations(1);

void print_tables() {
  const Results& r = results();
  Table table("Ablation A1 — detection verdict vs File-A size (pages)");
  table.columns({"File-A pages", "clean verdict", "clean t1/t0",
                 "rootkit verdict", "rootkit t2/t0"});
  bool all_correct = true;
  for (std::size_t i = 0; i < std::size(kSizes); ++i) {
    const auto& c = r.clean[i].report;
    const auto& k = r.rooted[i].report;
    all_correct &= c.verdict == DedupVerdict::kNoNestedVm &&
                   k.verdict == DedupVerdict::kNestedVmDetected;
    table.row({std::to_string(kSizes[i]), dedup_verdict_name(c.verdict),
               csk::format_fixed(c.t1.summary.mean / c.t0.summary.mean, 1),
               dedup_verdict_name(k.verdict),
               csk::format_fixed(k.t2.summary.mean / k.t0.summary.mean, 1)});
  }
  table.note(all_correct
                 ? "verdict correct at every size — §VI-D's one-page claim "
                   "holds in the model"
                 : "VERDICT ERRORS PRESENT — investigate");
  table.print();

  for (std::size_t i = 0; i < std::size(kSizes); ++i) {
    const auto& c = r.clean[i].report;
    const auto& k = r.rooted[i].report;
    const std::string pages = std::to_string(kSizes[i]);
    csk::bench::report()
        .add("pages=" + pages + "/clean_t1_over_t0",
             c.t1.summary.mean / c.t0.summary.mean)
        .add("pages=" + pages + "/rootkit_t2_over_t0",
             k.t2.summary.mean / k.t0.summary.mean);
  }
  csk::bench::report().add("all_verdicts_correct", all_correct ? 1 : 0);
}

}  // namespace

int main(int argc, char** argv) {
  return csk::bench::bench_main(argc, argv, print_tables);
}
