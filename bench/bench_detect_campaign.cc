// Detection campaign: the detector stack evaluated at population scale.
//
// The paper proves its dedup detector on one machine at fixed thresholds
// (Figs 5/6). This bench runs `csk::campaign::DetectionCampaign` — a fleet
// of mixed infected/clean guests in which the attacker actively evades
// (custom VMCS revision ids, hidden L1 processes, TSC scaling) and probes
// sometimes stall — sweeps every detector's threshold over the recorded
// scores into ROC curves, and calibrates operating points at an FPR budget
// of 1 %. The output is what an operator actually deploys: calibrated
// thresholds per detector plus a voting-ensemble vote count.
//
// Determinism witnesses (CSK_CHECKed, not just reported):
//   * serial (1 worker) and pooled (8 workers, audited) campaigns produce
//     byte-identical deterministic reports;
//   * the fleet audit re-executes every shard serially with zero diffs;
//   * a checkpointed run resumed from disk reproduces the same bytes.
//
// CSK_BENCH_TINY=1 shrinks the population for the CTest smoke run.
#include <cstdlib>
#include <filesystem>

#include "bench_util.h"
#include "campaign/campaign.h"
#include "common/status.h"
#include "detect/dedup_detector.h"

namespace {

using csk::bench::Table;
using namespace csk;

bool tiny() { return std::getenv("CSK_BENCH_TINY") != nullptr; }
std::size_t population() { return tiny() ? 8 : 32; }
constexpr std::uint64_t kRootSeed = 0xCA4DE7EC7ull;
constexpr int kPoolWorkers = 8;
constexpr double kTargetFpr = 0.01;
/// §VI-B runs two "wait for a while" merge windows; at the paper's 60 s
/// waits the protocol costs ~2 minutes end to end.
constexpr double kPaperProtocolS = 120.0;

campaign::CampaignConfig base_config(int workers) {
  campaign::CampaignConfig cfg;
  cfg.population = population();
  cfg.workers = workers;
  cfg.root_seed = kRootSeed;
  cfg.target_fpr = kTargetFpr;
  cfg.scenario.boot_touched_mib = 4;
  cfg.scenario.guest_memory_mb = 64;
  return cfg;
}

struct CampaignResults {
  campaign::CampaignReport serial;   // 1 worker, the baseline bytes
  campaign::CampaignReport pooled;   // kPoolWorkers, audited
  campaign::CampaignReport resumed;  // restored from checkpoints
  std::uint64_t checkpoints_written = 0;
  double paper_protocol_s = 0;  // one paper-scale dedup protocol
};

/// One dedup protocol at the paper's parameters (100 pages, 60 s waits)
/// against a clean small guest: the detection-latency yardstick.
double measure_paper_protocol() {
  vmm::World world(0x1A7E9C);
  vmm::World::HostConfig host_cfg;
  host_cfg.name = "host0";
  host_cfg.boot_touched_mib = 8;
  host_cfg.ksm.pages_per_scan = 4000;
  host_cfg.ksm.scan_interval = SimDuration::millis(10);
  vmm::Host* host = world.make_host(host_cfg);
  vmm::MachineConfig vm_cfg;
  vm_cfg.name = "guest0";
  vm_cfg.memory_mb = 64;
  vm_cfg.vcpus = 1;
  vm_cfg.drives.push_back({"guest0.qcow2", "qcow2", 20480});
  vm_cfg.netdevs.emplace_back();
  vmm::VirtualMachine* vm = host->launch_vm(vm_cfg, 4).value();
  detect::DedupDetectorConfig dcfg;  // paper defaults: 100 pages, 60 s
  detect::DedupDetector detector(host, dcfg);
  CSK_CHECK(detector.seed_guest(vm->os()).is_ok());
  auto report = detector.run(vm->os());
  CSK_CHECK(report.is_ok());
  CSK_CHECK(report->verdict == detect::DedupVerdict::kNoNestedVm);
  return report->protocol_time.seconds_f();
}

CampaignResults& results() {
  static CampaignResults* cached = [] {
    auto* r = new CampaignResults();
    r->serial = campaign::DetectionCampaign(base_config(1)).run();

    auto pooled_cfg = base_config(kPoolWorkers);
    pooled_cfg.audit = true;
    r->pooled = campaign::DetectionCampaign(pooled_cfg).run();

    // Checkpointed run + resume in a scratch directory under the CWD.
    namespace fs = std::filesystem;
    const fs::path dir = fs::current_path() / "campaign_ckpt";
    fs::remove_all(dir);
    auto ckpt_cfg = base_config(kPoolWorkers);
    ckpt_cfg.checkpoint.directory = dir.string();
    ckpt_cfg.checkpoint.every_shards = population() / 4 + 1;
    const campaign::CampaignReport checkpointed =
        campaign::DetectionCampaign(ckpt_cfg).run();
    r->checkpoints_written = checkpointed.fleet.checkpoints_written;
    auto resumed = campaign::DetectionCampaign(ckpt_cfg).resume_from();
    CSK_CHECK_MSG(resumed.is_ok(), resumed.status().to_string());
    r->resumed = std::move(resumed.value());
    fs::remove_all(dir);

    // The witnesses: worker count, auditing, checkpoint cuts and resume
    // must all be invisible in the deterministic bytes.
    const std::string baseline = r->serial.deterministic_json();
    CSK_CHECK(r->pooled.deterministic_json() == baseline);
    CSK_CHECK(checkpointed.deterministic_json() == baseline);
    CSK_CHECK(r->resumed.deterministic_json() == baseline);
    CSK_CHECK(r->pooled.fleet.audited && r->pooled.fleet.audit_diffs.empty());
    CSK_CHECK(r->pooled.fleet.failed_shards() == 0);
    CSK_CHECK(r->resumed.fleet.resumed_shards > 0);

    r->paper_protocol_s = measure_paper_protocol();
    return r;
  }();
  return *cached;
}

void BM_Detect_Campaign(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(results());
  }
  const auto& r = results();
  state.counters["population"] = static_cast<double>(population());
  state.counters["infected"] = static_cast<double>(r.pooled.infected_shards);
  state.counters["dedup_auc"] = r.pooled.detectors.at("dedup").roc.auc;
  state.counters["ensemble_auc"] = r.pooled.ensemble.roc.auc;
  state.counters["audit_diffs"] =
      static_cast<double>(r.pooled.fleet.audit_diffs.size());
  state.SetLabel(tiny() ? "tiny campaign" : "32-guest campaign");
}
BENCHMARK(BM_Detect_Campaign)->Iterations(1);

void add_evaluation(const std::string& name,
                    const campaign::DetectorEvaluation& eval) {
  auto& rep = csk::bench::report();
  const std::string prefix = "campaign/" + name;
  rep.add(prefix + "/auc", eval.roc.auc)
      .add(prefix + "/positives", static_cast<double>(eval.roc.positives))
      .add(prefix + "/negatives", static_cast<double>(eval.roc.negatives))
      .add(prefix + "/inconclusive",
           static_cast<double>(eval.roc.inconclusive))
      .add(prefix + "/operating/threshold", eval.operating.threshold)
      .add(prefix + "/operating/tpr", eval.operating.tpr)
      .add(prefix + "/operating/fpr", eval.operating.fpr)
      .add(prefix + "/operating/precision", eval.operating.precision);
  for (std::size_t i = 0; i < eval.roc.points.size(); ++i) {
    const auto& p = eval.roc.points[i];
    const std::string pp = prefix + "/roc/" + std::to_string(i);
    rep.add(pp + "/threshold", p.threshold)
        .add(pp + "/fpr", p.fpr)
        .add(pp + "/tpr", p.tpr);
  }
}

void print_tables() {
  const auto& r = results();
  const auto& rep = r.pooled;

  Table table("Detection campaign — " + std::to_string(population()) +
              " guests, FPR budget " + format_fixed(kTargetFpr * 100, 1) +
              " %");
  table.columns({"detector", "AUC", "thr@budget", "TPR", "FPR", "precision",
                 "inconclusive"});
  for (const auto& [name, eval] : rep.detectors) {
    table.row({name, format_fixed(eval.roc.auc, 3),
               format_fixed(eval.operating.threshold, 3),
               format_fixed(eval.operating.tpr, 3),
               format_fixed(eval.operating.fpr, 3),
               format_fixed(eval.operating.precision, 3),
               std::to_string(eval.roc.inconclusive)});
  }
  table.row({"ensemble", format_fixed(rep.ensemble.roc.auc, 3),
             std::to_string(rep.calibrated.ensemble_min_votes) + " votes",
             format_fixed(rep.ensemble.operating.tpr, 3),
             format_fixed(rep.ensemble.operating.fpr, 3),
             format_fixed(rep.ensemble.operating.precision, 3), "0"});
  table.note("population: " + std::to_string(rep.infected_shards) +
             " infected / " + std::to_string(rep.clean_shards) +
             " clean; attacker evasions and probe stalls drawn per shard");
  table.note("serial, pooled (audited), checkpointed and resumed campaigns "
             "all produced byte-identical deterministic reports");
  table.note("paper-scale dedup protocol (100 pages, 60 s waits): " +
             format_fixed(r.paper_protocol_s, 1) + " s vs ~" +
             format_fixed(kPaperProtocolS, 0) + " s in the paper (§VI-B)");
  table.print();

  auto& out = csk::bench::report();
  out.add("campaign/population", static_cast<double>(population()))
      .add("campaign/infected_shards",
           static_cast<double>(rep.infected_shards))
      .add("campaign/clean_shards", static_cast<double>(rep.clean_shards))
      .add("campaign/inconclusive_runs",
           static_cast<double>(rep.inconclusive_runs))
      .add("campaign/mean_detection_latency_s", rep.mean_detection_latency_s,
           "s")
      .add("campaign/audit_diffs",
           static_cast<double>(rep.fleet.audit_diffs.size()))
      .add("campaign/checkpoints_written",
           static_cast<double>(r.checkpoints_written))
      .add("campaign/resumed_shards",
           static_cast<double>(r.resumed.fleet.resumed_shards));
  for (const auto& [name, eval] : rep.detectors) {
    add_evaluation(name, eval);
  }
  add_evaluation("ensemble", rep.ensemble);
  out.add("campaign/calibrated/dedup_merged_ratio",
          rep.calibrated.dedup_merged_ratio)
      .add("campaign/calibrated/probe_anomaly_ratio",
           rep.calibrated.probe_anomaly_ratio)
      .add("campaign/calibrated/vmcs_min_signature_pages",
           static_cast<double>(rep.calibrated.vmcs_min_signature_pages))
      .add("campaign/calibrated/vmi_min_anomalies",
           static_cast<double>(rep.calibrated.vmi_min_anomalies))
      .add("campaign/calibrated/ensemble_min_votes",
           static_cast<double>(rep.calibrated.ensemble_min_votes));
  out.add_paper("detect_latency/protocol_s", r.paper_protocol_s,
                kPaperProtocolS, "s");
  out.note("no published counterpart for the ROC/calibration numbers: the "
           "paper evaluates one machine at fixed thresholds (Figs 5/6)")
      .note("campaign shards draw attacker evasions per seed: custom VMCS "
            "revision ids, hidden L1 processes, TSC scaling, probe stalls")
      .note("INCONCLUSIVE runs are excluded from ROC counts, never scored "
            "as clean (PR 2 contract)")
      .note("determinism witnesses CSK_CHECKed: serial == pooled == "
            "checkpointed == resumed deterministic bytes; audit_diffs == 0")
      .note(tiny() ? "CSK_BENCH_TINY=1: smoke-sized population"
                   : "full population");
}

}  // namespace

int main(int argc, char** argv) {
  return csk::bench::bench_main(argc, argv, print_tables);
}
