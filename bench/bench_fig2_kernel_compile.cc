// Regenerates Figure 2: Linux kernel compile time at L0 / L1 / L2.
//
// Paper shape: L0 (with ccache) -> L1 (without; footnote 1) is a +280 %
// jump, L1 -> L2 is the rootkit's real cost at +25.7 %. Five consecutive
// runs averaged, with relative standard deviation.
//
// L0 is the bare-metal baseline (priced directly); the L1 and L2 rows run
// through live simulated machines — an ordinary guest and a nested guest
// inside a VMX-enabled parent — so the numbers come out of the same
// machinery the attack uses.
#include "bench_util.h"
#include "common/stats.h"
#include "driver/vm_runner.h"
#include "workloads/kernel_compile.h"

namespace {

using csk::RunningStats;
using csk::SimDuration;
using csk::bench::Table;
using csk::hv::ExecEnv;
using csk::hv::Layer;
using csk::workloads::KernelCompileWorkload;

struct Fig2Results {
  RunningStats per_layer[3];
};

const Fig2Results& results() {
  static const Fig2Results cached = [] {
    Fig2Results r;
    const KernelCompileWorkload compile;
    csk::Rng rng(0xF162);
    // Run-to-run noise grows with stacking (thermal + host scheduling).
    const double noise[3] = {0.015, 0.022, 0.030};

    csk::vmm::World world;
    auto host_cfg = csk::bench::paper_host_config();
    host_cfg.ksm_enabled = false;  // not under test here
    host_cfg.boot_touched_mib = 64;
    csk::vmm::Host* host = world.make_host(host_cfg);

    // L0: the host itself, ccache functional (footnote 1).
    const ExecEnv l0{Layer::kL0, &world.timing(), true};
    for (int run = 0; run < 5; ++run) {
      r.per_layer[0].add(
          compile.run_noisy(l0, rng, noise[0]).seconds_f());
    }

    // L1: an ordinary guest.
    csk::vmm::VirtualMachine* l1 =
        host->launch_vm(csk::bench::paper_vm_config("build-l1")).value();
    for (const SimDuration d :
         csk::driver::run_repeated(*l1, compile, 5, noise[1], rng)) {
      r.per_layer[1].add(d.seconds_f());
    }

    // L2: a guest nested inside a VMX-enabled parent (the victim's world
    // after CloudSkulk).
    auto guestx_cfg = csk::bench::paper_vm_config("guestx");
    guestx_cfg.cpu_host_passthrough = true;
    guestx_cfg.monitor.telnet_port = 5556;
    guestx_cfg.netdevs[0].hostfwd.clear();
    csk::vmm::VirtualMachine* guestx =
        host->launch_vm(guestx_cfg, 96).value();
    CSK_CHECK(guestx->enable_nested_hypervisor().is_ok());
    auto inner_cfg = csk::bench::paper_vm_config("build-l2");
    inner_cfg.monitor.telnet_port = 0;
    inner_cfg.netdevs[0].hostfwd.clear();
    csk::vmm::VirtualMachine* l2 =
        guestx->launch_nested_vm(inner_cfg, 128).value();
    for (const SimDuration d :
         csk::driver::run_repeated(*l2, compile, 5, noise[2], rng)) {
      r.per_layer[2].add(d.seconds_f());
    }
    return r;
  }();
  return cached;
}

void BM_Fig2_KernelCompile(benchmark::State& state) {
  const int layer = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(results());
  }
  state.counters["compile_seconds_sim"] = results().per_layer[layer].mean();
  state.counters["rel_stddev_pct"] =
      results().per_layer[layer].rel_stddev_pct();
  state.SetLabel(csk::hv::layer_name(static_cast<Layer>(layer)));
}
BENCHMARK(BM_Fig2_KernelCompile)->DenseRange(0, 2)->Iterations(1);

void print_tables() {
  const Fig2Results& r = results();
  const double l0 = r.per_layer[0].mean();
  const double l1 = r.per_layer[1].mean();
  const double l2 = r.per_layer[2].mean();
  Table table("Figure 2 — Linux kernel compile timing (5-run averages)");
  table.columns({"Env", "compile time (s)", "rel stddev", "vs layer below",
                 "paper delta"});
  table.row({"L0", csk::format_fixed(l0, 1),
             csk::format_fixed(r.per_layer[0].rel_stddev_pct(), 1) + "%", "-",
             "-"});
  table.row({"L1", csk::format_fixed(l1, 1),
             csk::format_fixed(r.per_layer[1].rel_stddev_pct(), 1) + "%",
             csk::bench::pct_delta(l0, l1), "+280% (ccache on L0 only)"});
  table.row({"L2", csk::format_fixed(l2, 1),
             csk::format_fixed(r.per_layer[2].rel_stddev_pct(), 1) + "%",
             csk::bench::pct_delta(l1, l2), "+25.7%"});
  table.note("L1->L2 is the slowdown a victim sees after CloudSkulk is "
             "installed (CPU/memory-intensive workloads); L1/L2 rows were "
             "executed inside live simulated machines");
  table.print();

  csk::bench::report()
      .add("L0/compile_s", l0, "s")
      .add("L1/compile_s", l1, "s")
      .add("L2/compile_s", l2, "s")
      .add_paper("L1_to_L2/delta_pct", (l2 - l1) / l1 * 100.0, 25.7, "%")
      .note("paper publishes the L1->L2 delta (+25.7%), not absolute times");
}

}  // namespace

int main(int argc, char** argv) {
  return csk::bench::bench_main(argc, argv, print_tables);
}
