// Ablation A4 — ksmd scan rate vs the detector's required wait.
//
// The paper's protocol "waits for a while" after loading File-A. How long
// is a function of ksmd's scan rate (pages_to_scan / sleep_millisecs) and
// the amount of scannable memory. This sweep measures the simulated time
// until all File-A pages are merged, from the kernel-default rate upward.
#include "bench_util.h"
#include "detect/dedup_detector.h"

namespace {

using csk::bench::Table;
using namespace csk;

constexpr std::size_t kPagesPerScan[] = {100, 500, 2000, 5000, 20000};

struct Row {
  std::size_t pages_per_scan;
  double merge_seconds;   // sim time to full merge (or -1 on timeout)
  double scan_rate_pps;   // pages per second of scanning
};

Row run(std::size_t pages_per_scan) {
  vmm::World world;
  auto host_cfg = bench::paper_host_config();
  host_cfg.boot_touched_mib = 64;  // scannable bulk besides File-A
  host_cfg.ksm.pages_per_scan = pages_per_scan;
  host_cfg.ksm.scan_interval = SimDuration::millis(20);
  vmm::Host* host = world.make_host(host_cfg);
  auto vm_cfg = bench::paper_vm_config();
  vm_cfg.memory_mb = 256;
  vmm::VirtualMachine* guest = host->launch_vm(vm_cfg).value();

  detect::DedupDetectorConfig dcfg;
  dcfg.file_pages = 100;
  detect::DedupDetector detector(host, dcfg);
  CSK_CHECK(detector.seed_guest(guest->os()).is_ok());

  // L0-side buffer, as the detector's step 1 would create it.
  mem::AddressSpace buffer(&host->phys(), 128, "probe");
  for (std::size_t i = 0; i < 100; ++i) {
    buffer.write_page(Gfn(i), detector.file_pages()[i]);
  }
  host->ksm().register_region(&buffer);

  const SimTime start = world.simulator().now();
  const SimTime deadline = start + SimDuration::seconds(600);
  Row row{pages_per_scan, -1.0,
          static_cast<double>(pages_per_scan) / 0.020};
  while (world.simulator().now() < deadline) {
    world.simulator().run_for(SimDuration::millis(100));
    std::size_t merged = 0;
    for (std::size_t i = 0; i < 100; ++i) {
      const FrameNumber f = buffer.translate(Gfn(i));
      if (f.valid() && host->phys().frame(f).ksm_shared) ++merged;
    }
    if (merged == 100) {
      row.merge_seconds = (world.simulator().now() - start).seconds_f();
      break;
    }
  }
  host->ksm().unregister_region(&buffer);
  return row;
}

struct Results {
  Row rows[std::size(kPagesPerScan)];
};

const Results& results() {
  static const Results cached = [] {
    Results r;
    for (std::size_t i = 0; i < std::size(kPagesPerScan); ++i) {
      r.rows[i] = run(kPagesPerScan[i]);
    }
    return r;
  }();
  return cached;
}

void BM_KsmScanRate(benchmark::State& state) {
  const auto idx = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(results());
  state.counters["pages_per_scan"] =
      static_cast<double>(results().rows[idx].pages_per_scan);
  state.counters["merge_wait_s_sim"] = results().rows[idx].merge_seconds;
}
BENCHMARK(BM_KsmScanRate)
    ->DenseRange(0, std::size(kPagesPerScan) - 1)
    ->Iterations(1);

void print_tables() {
  Table table("Ablation A4 — ksmd scan rate vs time until File-A merges");
  table.columns({"pages_to_scan / 20ms", "scan rate (pages/s)",
                 "full-merge wait (sim s)"});
  for (const Row& row : results().rows) {
    table.row({std::to_string(row.pages_per_scan),
               csk::format_fixed(row.scan_rate_pps, 0),
               row.merge_seconds < 0 ? "> 600 (timeout)"
                                     : csk::format_fixed(row.merge_seconds, 1)});
  }
  table.note("kernel defaults (100 pages / 20 ms) make the paper's 'wait "
             "for a while' minutes-long on a busy host; operators running "
             "the detector want ksmd tuned up during the probe");
  table.print();

  for (const Row& row : results().rows) {
    csk::bench::report().add(
        "pages_per_scan=" + std::to_string(row.pages_per_scan) +
            "/full_merge_wait_s",
        row.merge_seconds, "s");
  }
  csk::bench::report().note("full_merge_wait_s of -1 means timeout (>600 s)");
}

}  // namespace

int main(int argc, char** argv) {
  return csk::bench::bench_main(argc, argv, print_tables);
}
